//! Per-chain protocol parameters and calibration constants.
//!
//! Structural parameters (block periods, confirmation depths, gas
//! limits, mempool policies) come straight from the paper's §5.2 or the
//! chains' public documentation. Capacity constants (per-block
//! transaction caps, execution rates, overload-degradation factors) are
//! calibration knobs fitted so the end-to-end experiments reproduce the
//! paper's observed numbers; every fitted value is flagged `CALIBRATED`
//! and cross-referenced in EXPERIMENTS.md.

use diablo_net::{DeploymentConfig, MachineSpec};
use diablo_sim::SimDuration;

use crate::chain::Chain;
use crate::mempool::MempoolPolicy;

/// The consensus mechanism driving block production.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsensusKind {
    /// Algorand BA★: sortition plus two committee vote phases over
    /// gossip; a fresh committee per round, no pipelining.
    AlgorandBa {
        /// Fixed per-round protocol time (sortition, seed, cert
        /// assembly) on top of gossip. CALIBRATED.
        round_base: SimDuration,
        /// Gossip overlay fanout.
        fanout: usize,
        /// Propagation budget already absorbed by the protocol's fixed
        /// λ timeouts: only gossip *beyond* this budget lengthens the
        /// round (why Algorand's round time barely improves on LAN).
        gossip_budget: SimDuration,
    },
    /// Avalanche: repeated metastable subsampling; block period
    /// throttled (§5.2: "seems to require a period between blocks of at
    /// least 1.9 seconds", and snowtrace shows ~1.2 s under load).
    AvalancheSnow {
        /// Number of sampling rounds to finalize a block.
        sample_rounds: u32,
        /// Block period when the pool is saturated. CALIBRATED.
        period_loaded: SimDuration,
        /// Block period when demand is light.
        period_idle: SimDuration,
    },
    /// Diem HotStuff: pipelined three-chain, rotating leaders, a
    /// pacemaker with exponential timeouts tuned for low-RTT networks.
    HotStuff {
        /// Minimum round interval (proposal pacing).
        min_round: SimDuration,
        /// Pacemaker round timeout; rounds whose quorum phase exceeds it
        /// trigger a view change. CALIBRATED (the mechanism behind §6.6:
        /// "high RTT networks" are not a Diem use case).
        pacemaker_base: SimDuration,
        /// Exponential backoff cap for consecutive view changes.
        pacemaker_cap: SimDuration,
    },
    /// Ethereum Clique proof-of-authority: in-turn sealers, a fixed
    /// minimum block period.
    Clique {
        /// The configured block period.
        period: SimDuration,
    },
    /// Quorum IBFT: pre-prepare plus two all-to-all phases; the next
    /// proposal waits for the previous commit (no pipelining).
    Ibft {
        /// Minimum block interval.
        min_period: SimDuration,
        /// Per-pending-transaction block-assembly cost — the pool scan
        /// that makes an unbounded queue fatal under sustained overload
        /// (§6.3). CALIBRATED.
        scan_per_tx: SimDuration,
    },
    /// Leaderless deterministic BFT (Red Belly's DBFT): every node
    /// proposes concurrently and the committed superblock is the union
    /// of a quorum of proposals — no leader egress bottleneck, no
    /// single-queue collapse.
    LeaderlessDbft {
        /// Minimum superblock interval.
        min_period: SimDuration,
        /// Transactions each node contributes per superblock.
        per_proposer: usize,
    },
    /// Solana: proof-of-history slots with TowerBFT votes.
    TowerBft {
        /// The PoH slot time (400 ms).
        slot: SimDuration,
        /// Fraction of slots skipped by absent/slow leaders.
        skip_rate: f64,
    },
}

/// Batched signature-verification cost model.
///
/// Real nodes do not verify block signatures one at a time: ed25519
/// chains batch-verify (half the scalar multiplications amortize across
/// the batch), Solana runs a dedicated SIMD/GPU sigverify stage, and
/// even ECDSA chains overlap recovery with block fetch across worker
/// threads. The per-block verification time is therefore a curve, not a
/// per-transaction constant:
///
/// ```text
/// cost(n)    = batch_fixed_us + n · per_tx_us / speedup(n)
/// speedup(n) = 1 + (max_speedup − 1) · n / (n + batch_knee)
/// ```
///
/// Singleton blocks pay the full single-signature price (`speedup(0+) →
/// 1`); large blocks approach `max_speedup` with half the gain reached
/// at `batch_knee` transactions. `per_tx_us` is the *per-core-pool*
/// cost: the constructors divide the single-signature latency by the
/// machine's vCPUs, modeling the verification thread pool every
/// production node runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigVerify {
    /// One-at-a-time verification cost per signature, µs (already
    /// divided across the node's verification threads).
    pub per_tx_us: f64,
    /// Fixed per-batch setup cost (dispatch, result aggregation), µs.
    pub batch_fixed_us: f64,
    /// Batch size reaching half the asymptotic batching gain.
    pub batch_knee: f64,
    /// Asymptotic speedup of batch verification over one-at-a-time.
    pub max_speedup: f64,
}

/// Single-core ed25519 verification latency, µs. CALIBRATED (donna-style
/// implementations verify in 50–70 µs on c5-class cores).
const ED25519_SINGLE_US: f64 = 55.0;

/// Single-core secp256k1 ECDSA pubkey-recovery latency, µs. CALIBRATED
/// (libsecp256k1 recovery on c5-class cores).
const SECP256K1_SINGLE_US: f64 = 85.0;

impl SigVerify {
    /// A model that charges nothing (ablations, micro-benches).
    pub const DISABLED: SigVerify = SigVerify {
        per_tx_us: 0.0,
        batch_fixed_us: 0.0,
        batch_knee: 1.0,
        max_speedup: 1.0,
    };

    /// Ed25519 with CPU batch verification, spread over `vcpus`
    /// verification threads (Algorand, Diem).
    pub fn ed25519(vcpus: u32) -> SigVerify {
        SigVerify {
            per_tx_us: ED25519_SINGLE_US / vcpus.max(1) as f64,
            batch_fixed_us: 30.0,
            batch_knee: 128.0,
            max_speedup: 2.0,
        }
    }

    /// Ed25519 through a dedicated SIMD/GPU sigverify stage (Solana).
    pub fn ed25519_staged(vcpus: u32) -> SigVerify {
        SigVerify {
            per_tx_us: ED25519_SINGLE_US / vcpus.max(1) as f64,
            batch_fixed_us: 60.0,
            batch_knee: 256.0,
            max_speedup: 4.0,
        }
    }

    /// Secp256k1 ECDSA recovery over a worker pool; no batch algorithm
    /// exists, the modest gain is fetch/verify overlap (geth-family:
    /// Ethereum, Quorum, Avalanche; Red Belly's parallel verifier).
    pub fn secp256k1(vcpus: u32) -> SigVerify {
        SigVerify {
            per_tx_us: SECP256K1_SINGLE_US / vcpus.max(1) as f64,
            batch_fixed_us: 20.0,
            batch_knee: 64.0,
            max_speedup: 1.3,
        }
    }

    /// The effective batching speedup at batch size `n`.
    pub fn speedup(&self, n: usize) -> f64 {
        let n = n as f64;
        1.0 + (self.max_speedup - 1.0) * n / (n + self.batch_knee.max(1e-9))
    }

    /// Verification time of a block carrying `n` signatures.
    pub fn batch_cost(&self, n: usize) -> SimDuration {
        if n == 0 || self.per_tx_us <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = self.batch_fixed_us + n as f64 * self.per_tx_us / self.speedup(n);
        SimDuration::from_secs_f64(us / 1e6)
    }
}

/// Everything the simulator needs to run one chain on one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainParams {
    /// Which chain these parameters model.
    pub chain: Chain,
    /// Consensus mechanism and timing.
    pub consensus: ConsensusKind,
    /// Mempool admission policy.
    pub mempool: MempoolPolicy,
    /// London fee-market headroom clients sign with; `None` disables the
    /// fee market (Quorum has no London, §5.2).
    pub fee_headroom: Option<f64>,
    /// Gas per block.
    pub block_gas_limit: u64,
    /// Transactions per block. CALIBRATED per chain.
    pub block_tx_limit: usize,
    /// Block payload bytes.
    pub block_bytes_limit: u64,
    /// Extra appended blocks before a transaction counts as final
    /// (Solana: 30, §5.2).
    pub confirmations: u32,
    /// Pool residency limit after which a transaction's recent
    /// blockhash expires (Solana: 120 s, §5.2).
    pub blockhash_expiry: Option<SimDuration>,
    /// Service degradation under admission overload: effective block
    /// capacity is multiplied by `1 / (1 + d · fill²)` where `fill` is
    /// the pool occupancy ratio. CALIBRATED against Figure 4.
    pub overload_degradation: f64,
    /// Contract-execution rate in VM ops per second on the deployment's
    /// machines. CALIBRATED.
    pub exec_ops_per_sec: f64,
    /// Number of distinct sender accounts the workload signs from
    /// (2,000 normally; 130 for Diem on community/consortium, §5.2).
    pub accounts: u32,
    /// Client-side commit-detection delay (websocket push or block
    /// polling cadence, §4).
    pub detection_delay: SimDuration,
    /// Transaction-admission rate (signature checks, mempool quorum
    /// acks) beyond which service degrades. CALIBRATED against Fig. 4.
    pub admission_rate: f64,
    /// Whether dropped transactions leave nonce gaps that stall the
    /// sender's later transactions (geth account nonces — the mechanism
    /// behind Ethereum's 0.09 % commits at 10,000 TPS, §6.3).
    pub nonce_gaps: bool,
    /// Sustained per-node egress bandwidth available for block
    /// broadcast, in Mbps (the leader-egress bound that caps IBFT at
    /// ~500 TPS on 200 WAN nodes, §6.2).
    pub egress_mbps: f64,
    /// Admission-cost multiplier for DApp invocations relative to
    /// native transfers (smart-contract calls are prevalidated /
    /// speculatively executed on Algorand, Diem and Solana, so a call
    /// storm overloads admission much faster than a transfer storm).
    /// CALIBRATED against Figure 2.
    pub invoke_weight: f64,
    /// Hard per-block cap on DApp invocations (Solana's banking stage
    /// serializes writes to a hot contract account). `None` = only gas
    /// limits apply.
    pub invoke_tx_per_block: Option<usize>,
    /// Batched signature-verification cost curve applied per block.
    pub sig_verify: SigVerify,
}

/// Per-core execution rate for natively-optimized geth contract code
/// (VM ops per second). CALIBRATED.
const GETH_OPS_PER_CORE: f64 = 70_000_000.0;

impl ChainParams {
    /// Standard parameters for `chain` on `config` — the defaults used
    /// by every paper experiment.
    pub fn standard(chain: Chain, config: &DeploymentConfig) -> Self {
        let machine = config.machine();
        let local = config.is_local();
        let big_net = config.node_count() >= 100;
        match chain {
            Chain::Algorand => ChainParams {
                chain,
                consensus: ConsensusKind::AlgorandBa {
                    round_base: SimDuration::from_millis(3_350),
                    fanout: 8,
                    gossip_budget: SimDuration::from_millis(1_500),
                },
                mempool: MempoolPolicy::bounded(7_000),
                fee_headroom: None,
                block_gas_limit: u64::MAX,
                block_tx_limit: 3_650,
                block_bytes_limit: 5 * 1024 * 1024,
                confirmations: 0,
                blockhash_expiry: None,
                overload_degradation: 0.083,
                exec_ops_per_sec: exec_rate(machine, 1.0),
                accounts: 2_000,
                // Diablo polls every appended block for Algorand (§5.2).
                detection_delay: SimDuration::from_millis(500),
                admission_rate: 3_000.0,
                nonce_gaps: false,
                egress_mbps: egress(local, machine),
                invoke_weight: 8.0,
                invoke_tx_per_block: None,
                sig_verify: SigVerify::ed25519(machine.vcpus()),
            },
            Chain::Avalanche => ChainParams {
                chain,
                consensus: ConsensusKind::AvalancheSnow {
                    sample_rounds: 12,
                    period_loaded: SimDuration::from_millis(1_180),
                    period_idle: SimDuration::from_millis(2_200),
                },
                mempool: MempoolPolicy::bounded(30_000),
                // Clients re-sign with generous caps as the fee moves
                // (§5.2: the gas fee is computed dynamically).
                fee_headroom: Some(240.0),
                block_gas_limit: 8_000_000,
                block_tx_limit: 4_000,
                block_bytes_limit: 2 * 1024 * 1024,
                confirmations: 0,
                blockhash_expiry: None,
                overload_degradation: 0.0,
                exec_ops_per_sec: exec_rate(machine, 1.0),
                accounts: 2_000,
                detection_delay: SimDuration::from_millis(200),
                admission_rate: f64::INFINITY,
                nonce_gaps: false,
                egress_mbps: egress(local, machine),
                invoke_weight: 1.0,
                invoke_tx_per_block: None,
                sig_verify: SigVerify::secp256k1(machine.vcpus()),
            },
            Chain::Diem => ChainParams {
                chain,
                consensus: ConsensusKind::HotStuff {
                    min_round: SimDuration::from_millis(120),
                    pacemaker_base: SimDuration::from_millis(100),
                    pacemaker_cap: SimDuration::from_millis(4_000),
                },
                mempool: MempoolPolicy {
                    capacity: Some(7_000),
                    per_sender: Some(100),
                },
                fee_headroom: None,
                block_gas_limit: u64::MAX,
                block_tx_limit: 250,
                block_bytes_limit: 1024 * 1024,
                confirmations: 0,
                blockhash_expiry: None,
                overload_degradation: 3.6,
                exec_ops_per_sec: exec_rate(machine, 0.8),
                // §5.2: the setup tools fail past 130 accounts, which the
                // paper hit in the community and consortium deployments.
                accounts: if big_net { 130 } else { 2_000 },
                detection_delay: SimDuration::from_millis(100),
                admission_rate: 3_000.0,
                nonce_gaps: false,
                egress_mbps: egress(local, machine),
                invoke_weight: 1.5,
                invoke_tx_per_block: None,
                sig_verify: SigVerify::ed25519(machine.vcpus()),
            },
            Chain::Ethereum => ChainParams {
                chain,
                consensus: ConsensusKind::Clique {
                    period: SimDuration::from_secs(15),
                },
                mempool: MempoolPolicy::bounded(120_000),
                fee_headroom: Some(2.0),
                block_gas_limit: 8_000_000,
                block_tx_limit: 2_000,
                block_bytes_limit: 2 * 1024 * 1024,
                confirmations: 1,
                blockhash_expiry: None,
                overload_degradation: 0.0,
                exec_ops_per_sec: exec_rate(machine, 1.0),
                accounts: 2_000,
                detection_delay: SimDuration::from_millis(200),
                admission_rate: f64::INFINITY,
                nonce_gaps: true,
                egress_mbps: egress(local, machine),
                invoke_weight: 1.0,
                invoke_tx_per_block: None,
                sig_verify: SigVerify::secp256k1(machine.vcpus()),
            },
            Chain::Quorum => ChainParams {
                chain,
                consensus: ConsensusKind::Ibft {
                    min_period: SimDuration::from_millis(1_000),
                    scan_per_tx: SimDuration::from_micros(20),
                },
                mempool: MempoolPolicy::UNBOUNDED,
                fee_headroom: None,
                // Quorum genesis files commonly ship a 0xE0000000 gas
                // limit; nothing but the pool caps light transactions.
                block_gas_limit: 0xE000_0000,
                block_tx_limit: 3_000,
                block_bytes_limit: 4 * 1024 * 1024,
                confirmations: 0,
                blockhash_expiry: None,
                overload_degradation: 0.0,
                // Quorum "benefits from many blockchain specific
                // optimizations by using geth as a base code" (§6.2);
                // its execution factor is fitted to the Fig. 5 Uber run.
                exec_ops_per_sec: exec_rate(machine, 12.5),
                accounts: 2_000,
                detection_delay: SimDuration::from_millis(100),
                admission_rate: f64::INFINITY,
                nonce_gaps: false,
                egress_mbps: egress(local, machine),
                invoke_weight: 1.0,
                invoke_tx_per_block: None,
                sig_verify: SigVerify::secp256k1(machine.vcpus()),
            },
            Chain::RedBelly => ChainParams {
                chain,
                consensus: ConsensusKind::LeaderlessDbft {
                    min_period: SimDuration::from_millis(1_000),
                    per_proposer: 150,
                },
                // DBFT was designed to never drop a client request and,
                // being leaderless, has no single queue to saturate.
                mempool: MempoolPolicy::UNBOUNDED,
                fee_headroom: None,
                block_gas_limit: 0xE000_0000,
                block_tx_limit: 150 * config.node_count().max(1),
                block_bytes_limit: 16 * 1024 * 1024,
                confirmations: 0,
                blockhash_expiry: None,
                overload_degradation: 0.0,
                exec_ops_per_sec: exec_rate(machine, 8.0),
                accounts: 2_000,
                detection_delay: SimDuration::from_millis(100),
                admission_rate: f64::INFINITY,
                nonce_gaps: false,
                egress_mbps: egress(local, machine),
                invoke_weight: 1.0,
                invoke_tx_per_block: None,
                sig_verify: SigVerify::secp256k1(machine.vcpus()),
            },
            Chain::Solana => ChainParams {
                chain,
                consensus: ConsensusKind::TowerBft {
                    slot: SimDuration::from_millis(400),
                    skip_rate: 0.05,
                },
                mempool: MempoolPolicy::bounded(450 * machine.vcpus() as usize),
                fee_headroom: None,
                block_gas_limit: 48_000_000,
                // Banking-stage throughput scales with cores. CALIBRATED
                // to the paper's 8,845 TPS datacenter peak.
                block_tx_limit: 110 * machine.vcpus() as usize,
                block_bytes_limit: 4 * 1024 * 1024,
                confirmations: 30,
                blockhash_expiry: Some(SimDuration::from_secs(120)),
                overload_degradation: 0.42,
                exec_ops_per_sec: exec_rate(machine, machine.vcpus() as f64 / 2.0),
                accounts: 2_000,
                detection_delay: SimDuration::from_millis(100),
                admission_rate: 1_000.0 * machine.vcpus() as f64,
                nonce_gaps: false,
                egress_mbps: egress(local, machine),
                invoke_weight: 2.0,
                invoke_tx_per_block: Some(65),
                sig_verify: SigVerify::ed25519_staged(machine.vcpus()),
            },
        }
    }

    /// Whether this chain never drops an admitted transaction.
    pub fn never_drops(&self) -> bool {
        self.mempool.capacity.is_none()
    }

    /// Whether the local configuration hint applies (kept for adapters).
    pub fn is_leader_based(&self) -> bool {
        matches!(
            self.consensus,
            ConsensusKind::HotStuff { .. } | ConsensusKind::Ibft { .. }
        )
    }

    /// The `local` knob some tests use to check parameter derivation.
    pub fn accounts_for(chain: Chain, config: &DeploymentConfig) -> u32 {
        Self::standard(chain, config).accounts
    }
}

/// Execution rate for a machine: serial geth-style execution scaled by a
/// per-chain engine factor (Solana's Sealevel runs across cores).
fn exec_rate(machine: MachineSpec, factor: f64) -> f64 {
    GETH_OPS_PER_CORE * factor * (machine.vcpus() as f64 / 8.0).clamp(0.5, 4.5)
}

/// Sustained block-broadcast egress per node: intra-datacenter wiring
/// versus cross-region WAN flows (Table 3 bandwidths sit in the
/// 100–400 Mbps band; sustained egress scales with the instance size).
fn egress(local: bool, machine: MachineSpec) -> f64 {
    if local {
        5_000.0
    } else {
        40.0 * machine.vcpus() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_net::DeploymentKind;

    fn cfg(kind: DeploymentKind) -> DeploymentConfig {
        DeploymentConfig::standard(kind)
    }

    #[test]
    fn quorum_never_drops_and_has_no_london() {
        let p = ChainParams::standard(Chain::Quorum, &cfg(DeploymentKind::Consortium));
        assert!(p.never_drops());
        assert!(p.fee_headroom.is_none());
        assert!(p.is_leader_based());
    }

    #[test]
    fn diem_per_sender_cap_and_account_limit() {
        let small = ChainParams::standard(Chain::Diem, &cfg(DeploymentKind::Testnet));
        assert_eq!(small.mempool.per_sender, Some(100));
        assert_eq!(small.accounts, 2_000);
        // §5.2: only 130 accounts on the 200-node deployments.
        let big = ChainParams::standard(Chain::Diem, &cfg(DeploymentKind::Consortium));
        assert_eq!(big.accounts, 130);
    }

    #[test]
    fn solana_confirmations_and_expiry() {
        let p = ChainParams::standard(Chain::Solana, &cfg(DeploymentKind::Datacenter));
        assert_eq!(p.confirmations, 30);
        assert_eq!(p.blockhash_expiry, Some(SimDuration::from_secs(120)));
        match p.consensus {
            ConsensusKind::TowerBft { slot, .. } => assert_eq!(slot.as_millis(), 400),
            other => panic!("wrong consensus {other:?}"),
        }
    }

    #[test]
    fn solana_capacity_scales_with_machine() {
        let dc = ChainParams::standard(Chain::Solana, &cfg(DeploymentKind::Datacenter));
        let tn = ChainParams::standard(Chain::Solana, &cfg(DeploymentKind::Testnet));
        assert_eq!(dc.block_tx_limit, 110 * 36);
        assert_eq!(tn.block_tx_limit, 110 * 4);
    }

    #[test]
    fn london_only_on_ethereum_and_avalanche() {
        for chain in Chain::ALL {
            let p = ChainParams::standard(chain, &cfg(DeploymentKind::Devnet));
            let has_london = p.fee_headroom.is_some();
            assert_eq!(
                has_london,
                matches!(chain, Chain::Ethereum | Chain::Avalanche),
                "{chain}"
            );
        }
    }

    #[test]
    fn avalanche_block_limits_match_paper() {
        let p = ChainParams::standard(Chain::Avalanche, &cfg(DeploymentKind::Datacenter));
        assert_eq!(p.block_gas_limit, 8_000_000, "§5.2: 8M gas per block");
        match p.consensus {
            ConsensusKind::AvalancheSnow {
                period_loaded,
                period_idle,
                ..
            } => {
                assert!(period_loaded >= SimDuration::from_millis(1_100));
                assert!(period_idle > period_loaded);
            }
            other => panic!("wrong consensus {other:?}"),
        }
    }

    #[test]
    fn leader_based_classification_matches_chain() {
        for chain in Chain::ALL {
            let p = ChainParams::standard(chain, &cfg(DeploymentKind::Devnet));
            assert_eq!(p.is_leader_based(), chain.is_leader_based_bft(), "{chain}");
        }
    }
}
