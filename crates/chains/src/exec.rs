//! Transaction execution at block-commit time.
//!
//! Wraps the `diablo-vm` interpreter behind two modes:
//!
//! - [`ExecMode::Exact`] executes every committed transaction through the
//!   interpreter against live contract state — bit-faithful, used by the
//!   integration tests (e.g. the FIFA counter must equal the number of
//!   committed `add`s).
//! - [`ExecMode::Profiled`] executes the first transaction of each
//!   (entry, arg-class) through the interpreter, caches its cost, and
//!   replays the cached cost for the rest, re-validating with a real
//!   execution every [`PROFILE_REFRESH`] transactions. Large experiments
//!   (millions of transactions, a 1.4 M-op Mobility call each) would be
//!   intractable otherwise; the cost of a DApp call is constant across
//!   calls up to argument variation, which the refresh executions verify.

use std::collections::HashMap;

use diablo_contracts::{build, calls, Contract, DApp, Unsupported};
use diablo_vm::{ExecError, Interpreter, Receipt, TxContext, VmFlavor};

use crate::optimistic::OptimisticExecutor;
use crate::parallel::ParallelExecutor;
use crate::tx::{CallSel, Payload};

/// How often profiled mode re-runs a real execution per cache entry.
pub const PROFILE_REFRESH: u64 = 1024;

/// Execution fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Interpret every transaction.
    Exact,
    /// Interpret once per call class, replay cached costs after.
    Profiled,
}

/// Block-commit concurrency, orthogonal to [`ExecMode`]: how many
/// worker threads [`ExecutionEngine::execute_block`] may use and which
/// scheduler drives them. Both parallel modes are bit-identical to
/// serial by construction (see [`crate::parallel`] and
/// [`crate::optimistic`], and `docs/EXECUTION.md` for the model);
/// `Profiled` refresh executions always take the serial path regardless
/// of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// One transaction at a time, in canonical order.
    #[default]
    Serial,
    /// Static scheduling from deploy-time read/write sets, up to this
    /// many scoped worker threads per committed block. Transactions
    /// with dynamic footprints fall back to serial.
    Parallel(usize),
    /// Optimistic (Block-STM-style) speculation with commit-order
    /// read-set validation, up to this many worker threads. Handles
    /// dynamic footprints; results and telemetry are identical at any
    /// thread count (a count of 1 still runs the full speculate /
    /// validate protocol, just on one worker).
    Optimistic(usize),
}

impl Concurrency {
    /// The worker count this setting allows (≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Concurrency::Serial => 1,
            Concurrency::Parallel(n) | Concurrency::Optimistic(n) => n.max(1),
        }
    }

    /// Stable numeric code of the mode (serial 0, static-parallel 1,
    /// optimistic 2) — the tracer's `executed` annotation. Worker
    /// counts are deliberately excluded: they never change results.
    pub fn code(self) -> u64 {
        match self {
            Concurrency::Serial => 0,
            Concurrency::Parallel(_) => 1,
            Concurrency::Optimistic(_) => 2,
        }
    }

    /// Parses a mode name (`serial`, `parallel`, `optimistic`) plus a
    /// worker count into a concurrency setting — the shared grammar of
    /// the CLI's `--execution=`/`--threads=`/`--optimistic` flags and
    /// the spec's `execution:` section.
    pub fn from_mode(mode: &str, threads: usize) -> Option<Concurrency> {
        match mode {
            "serial" => Some(Concurrency::Serial),
            "parallel" | "static" => Some(Concurrency::Parallel(threads)),
            "optimistic" => Some(Concurrency::Optimistic(threads)),
            _ => None,
        }
    }

    /// The mode name [`Concurrency::from_mode`] accepts for this value.
    pub fn mode_name(self) -> &'static str {
        match self {
            Concurrency::Serial => "serial",
            Concurrency::Parallel(_) => "parallel",
            Concurrency::Optimistic(_) => "optimistic",
        }
    }
}

/// The cost and outcome of executing one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCost {
    /// Gas (or compute units) charged by the flavor's schedule,
    /// including the intrinsic admission cost.
    pub gas: u64,
    /// Instructions executed (CPU-time proxy).
    pub ops: u64,
    /// Whether execution succeeded.
    pub ok: bool,
}

/// Coarse argument class for the profiled cache. Calls of one entry
/// point are assumed to cost the same only when they share an argument
/// count and a payload-size magnitude; entries invoked with different
/// shapes (e.g. `update()` vs `update(1, 1)`) get distinct cache slots
/// instead of silently replaying each other's cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ArgClass {
    /// Number of call arguments.
    argc: u8,
    /// Bit length of the payload size (0 for no payload), so payloads
    /// within a factor of two share a class.
    payload_pow2: u8,
}

impl ArgClass {
    fn of(call: &calls::CallSpec) -> ArgClass {
        ArgClass {
            argc: call.args.len() as u8,
            payload_pow2: (u64::BITS - call.payload_bytes.leading_zeros()) as u8,
        }
    }
}

/// Executes transactions for one chain's VM flavor.
#[derive(Debug)]
pub struct ExecutionEngine {
    flavor: VmFlavor,
    interpreter: Interpreter,
    mode: ExecMode,
    concurrency: Concurrency,
    /// The deployed contract for the experiment's DApp (if any).
    contract: Option<Contract>,
    /// Per-transaction execution counts of the last committed block
    /// (speculations + re-executions under the optimistic executor, 1
    /// everywhere else) — the tracer's `executed` annotation.
    last_exec_counts: Vec<u32>,
    /// Profiled-mode cache: (entry, arg class) → (cost, replays since
    /// refresh).
    cache: HashMap<(&'static str, ArgClass), (ExecCost, u64)>,
}

/// Gas cost of a native transfer on each flavor (the EVM intrinsic for
/// geth; small flat costs elsewhere).
fn transfer_gas(flavor: VmFlavor) -> u64 {
    match flavor {
        VmFlavor::Geth => 21_000,
        VmFlavor::Avm => 1,
        VmFlavor::MoveVm => 600,
        VmFlavor::Ebpf => 1_500,
    }
}

impl ExecutionEngine {
    /// An engine with no deployed contract (native-transfer workloads).
    pub fn native(flavor: VmFlavor, mode: ExecMode) -> Self {
        ExecutionEngine {
            flavor,
            interpreter: Interpreter::new(flavor),
            mode,
            concurrency: Concurrency::Serial,
            contract: None,
            last_exec_counts: Vec::new(),
            cache: HashMap::new(),
        }
    }

    /// An engine with `dapp` deployed. Fails with the paper's
    /// explanation when the DApp cannot be built for the flavor (YouTube
    /// on the AVM).
    pub fn with_dapp(flavor: VmFlavor, mode: ExecMode, dapp: DApp) -> Result<Self, Unsupported> {
        let contract = build(dapp, flavor)?;
        Ok(ExecutionEngine {
            flavor,
            interpreter: Interpreter::new(flavor),
            mode,
            concurrency: Concurrency::Serial,
            contract: Some(contract),
            last_exec_counts: Vec::new(),
            cache: HashMap::new(),
        })
    }

    /// Sets the block-commit concurrency (builder style).
    pub fn with_concurrency(mut self, concurrency: Concurrency) -> Self {
        self.concurrency = concurrency;
        self
    }

    /// The configured block-commit concurrency.
    pub fn concurrency(&self) -> Concurrency {
        self.concurrency
    }

    /// How many times each transaction of the last
    /// [`ExecutionEngine::execute_block`] batch ran: always 1 on the
    /// serial and statically-scheduled paths, the speculation count
    /// under the optimistic executor. Empty before the first block.
    pub fn last_exec_counts(&self) -> &[u32] {
        &self.last_exec_counts
    }

    /// The engine's VM flavor.
    pub fn flavor(&self) -> VmFlavor {
        self.flavor
    }

    /// The deployed contract, if any.
    pub fn contract(&self) -> Option<&Contract> {
        self.contract.as_ref()
    }

    /// Dry-runs one representative call of the deployed DApp; used before
    /// an experiment to classify the chain as able or unable ("budget
    /// exceeded") to run the DApp — the X marks of Figure 5.
    pub fn probe(&self) -> Option<Result<(), ExecError>> {
        let c = self.contract.as_ref()?;
        Some(c.probe().map(|_| ()))
    }

    /// Executes (or replays) one transaction, returning its cost.
    pub fn execute(&mut self, payload: Payload) -> ExecCost {
        match payload {
            Payload::Transfer => ExecCost {
                gas: transfer_gas(self.flavor),
                ops: 10,
                ok: true,
            },
            Payload::Invoke { dapp, seq, call } => self.execute_invoke(dapp, seq, call),
        }
    }

    /// Resolves a payload to the concrete call it performs.
    fn resolve(dapp: DApp, seq: u64, sel: Option<CallSel>) -> calls::CallSpec {
        match sel {
            None => calls::call_for(dapp, seq),
            Some(sel) => {
                let args: Vec<i64> = sel.args[..sel.argc as usize]
                    .iter()
                    .map(|&a| a as i64)
                    .collect();
                calls::call_for_entry(dapp, sel.entry, &args)
            }
        }
    }

    fn execute_invoke(&mut self, dapp: DApp, seq: u64, sel: Option<CallSel>) -> ExecCost {
        // Resolve once; the resolved call is passed down so `interpret`
        // never re-materializes the argument vector.
        let call = Self::resolve(dapp, seq, sel);
        if self.mode == ExecMode::Profiled {
            let key = (call.entry, ArgClass::of(&call));
            if let Some((cost, age)) = self.cache.get_mut(&key) {
                if *age < PROFILE_REFRESH {
                    // A hit only bumps the age in place: one hash lookup.
                    *age += 1;
                    diablo_telemetry::counter!("exec.profiled.cache_hits");
                    return *cost;
                }
            }
            let cost = self.interpret(seq, call);
            diablo_telemetry::counter!("exec.profiled.refreshes");
            self.cache.insert(key, (cost, 0));
            cost
        } else {
            self.interpret(seq, call)
        }
    }

    fn interpret(&mut self, seq: u64, call: calls::CallSpec) -> ExecCost {
        let intrinsic = intrinsic_cost(self.flavor, &call);
        let Some(contract) = self.contract.as_mut() else {
            // No contract deployed: treat as a transfer-priced no-op.
            return ExecCost {
                gas: transfer_gas(self.flavor),
                ops: 10,
                ok: true,
            };
        };
        let ctx = tx_context(seq, call.args, call.payload_bytes);
        // Every committed transaction goes through the prepared fast
        // path; the name-keyed execute() remains only as the fallback
        // for entries the prepared program does not know (none today —
        // preparation interns every entry at build time).
        let result = match contract.prepared.entry_id(call.entry) {
            Some(entry) => self.interpreter.execute_prepared(
                &contract.prepared,
                entry,
                &ctx,
                &mut contract.initial_state,
            ),
            None => self.interpreter.execute(
                &contract.program,
                call.entry,
                &ctx,
                &mut contract.initial_state,
            ),
        };
        cost_of(result, intrinsic)
    }

    /// Executes one committed batch, returning per-transaction costs in
    /// canonical order.
    ///
    /// With [`ExecMode::Exact`] and a parallel [`Concurrency`], invokes
    /// go through a block executor: [`Concurrency::Parallel`] schedules
    /// across a [`ParallelExecutor`] using the contract's static
    /// read/write sets, [`Concurrency::Optimistic`] speculates through
    /// an [`OptimisticExecutor`] with commit-order read-set validation.
    /// Both are bit-identical to the serial loop (same costs, same
    /// final state), just faster — on conflict-light blocks for the
    /// static scheduler, additionally on dynamic-footprint blocks for
    /// the optimistic one. Everything else (serial config, profiled
    /// mode, native workloads, single-transaction blocks) takes the
    /// plain serial loop.
    pub fn execute_block(&mut self, payloads: &[Payload]) -> Vec<ExecCost> {
        let threads = self.concurrency.threads();
        diablo_telemetry::record!("exec.block.txs", payloads.len() as u64);
        // Every path below runs each transaction exactly once, except
        // the optimistic executor, which overwrites its slots with the
        // real speculation counts.
        self.last_exec_counts = vec![1; payloads.len()];
        let plannable =
            self.mode == ExecMode::Exact && payloads.len() >= 2 && self.contract.is_some();
        // The optimistic protocol itself is worker-count independent, so
        // it runs even at 1 thread: Optimistic(1) must produce the same
        // telemetry (rounds, aborts) as Optimistic(8).
        let optimistic = matches!(self.concurrency, Concurrency::Optimistic(_));
        let use_executor = plannable && (optimistic || threads >= 2);
        // Conflict-plan telemetry is a pure function of the block, never
        // of the worker count: serial runs must resolve and plan the
        // same blocks a parallel run would, or their snapshots diverge.
        let want_plan_stats = diablo_telemetry::enabled() && plannable;
        if !use_executor && !want_plan_stats {
            return payloads.iter().map(|&p| self.execute(p)).collect();
        }

        // Resolve every invoke up front. Transfers don't touch contract
        // state, so their (constant) cost is filled in positionally.
        let flavor = self.flavor;
        let mut costs: Vec<ExecCost> = Vec::with_capacity(payloads.len());
        let mut slots: Vec<usize> = Vec::new(); // invoke → payload position
        let mut intrinsics: Vec<u64> = Vec::new(); // aligned with `txs`
        let mut txs: Vec<crate::parallel::BlockTx> = Vec::new();
        {
            let contract = self.contract.as_ref().expect("checked above");
            for (slot, &payload) in payloads.iter().enumerate() {
                match payload {
                    Payload::Transfer => costs.push(ExecCost {
                        gas: transfer_gas(flavor),
                        ops: 10,
                        ok: true,
                    }),
                    Payload::Invoke { dapp, seq, call } => {
                        let call = Self::resolve(dapp, seq, call);
                        let Some(entry) = contract.prepared.entry_id(call.entry) else {
                            // An entry preparation does not know would
                            // need the name-keyed interpreter; keep the
                            // whole block on the serial loop.
                            return payloads.iter().map(|&p| self.execute(p)).collect();
                        };
                        slots.push(slot);
                        intrinsics.push(intrinsic_cost(flavor, &call));
                        txs.push((entry, tx_context(seq, call.args, call.payload_bytes)));
                        costs.push(ExecCost {
                            gas: 0,
                            ops: 0,
                            ok: false,
                        });
                    }
                }
            }
        }

        if want_plan_stats {
            let contract = self.contract.as_ref().expect("checked above");
            crate::parallel::plan_stats(&contract.prepared, &contract.initial_state, &txs)
                .record();
        }
        if !use_executor {
            return payloads.iter().map(|&p| self.execute(p)).collect();
        }

        let vm = self.interpreter;
        let contract = self.contract.as_mut().expect("checked above");
        // The mapper condenses each receipt to its cost on the worker
        // that produced it, so event payloads never outlive their
        // transaction.
        let map = |k: usize, result| cost_of(result, intrinsics[k]);
        let results = if optimistic {
            let (results, execs) = OptimisticExecutor::new(threads).execute_counting(
                &vm,
                &contract.prepared,
                &mut contract.initial_state,
                &txs,
                map,
            );
            for (&slot, count) in slots.iter().zip(execs) {
                self.last_exec_counts[slot] = count;
            }
            results
        } else {
            ParallelExecutor::new(threads).execute(
                &vm,
                &contract.prepared,
                &mut contract.initial_state,
                &txs,
                map,
            )
        };
        for (slot, cost) in slots.into_iter().zip(results) {
            costs[slot] = cost;
        }
        costs
    }
}

/// The flavor's intrinsic admission cost for one resolved call.
fn intrinsic_cost(flavor: VmFlavor, call: &calls::CallSpec) -> u64 {
    flavor
        .schedule()
        .intrinsic_cost(8 * call.args.len() as u64 + call.payload_bytes)
}

/// The transaction context a committed invoke executes under.
fn tx_context(seq: u64, args: Vec<i64>, payload_bytes: u64) -> TxContext {
    TxContext {
        caller: (seq % 10_000) as i64 + 1,
        args,
        payload_bytes,
        gas_limit: u64::MAX,
    }
}

/// Maps an interpreter outcome to the cost the chain charges for it.
fn cost_of(result: Result<Receipt, ExecError>, intrinsic: u64) -> ExecCost {
    match result {
        Ok(receipt) => ExecCost {
            gas: receipt.gas_used + intrinsic,
            ops: receipt.ops_executed,
            ok: true,
        },
        Err(ExecError::BudgetExceeded { used, .. }) => {
            // The hard budget was consumed before the abort.
            ExecCost {
                gas: used + intrinsic,
                ops: used,
                ok: false,
            }
        }
        Err(_) => ExecCost {
            gas: intrinsic,
            ops: 100,
            ok: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_cost_the_evm_intrinsic() {
        let mut e = ExecutionEngine::native(VmFlavor::Geth, ExecMode::Exact);
        let c = e.execute(Payload::Transfer);
        assert_eq!(c.gas, 21_000);
        assert!(c.ok);
    }

    #[test]
    fn exact_mode_executes_real_state_effects() {
        let mut e =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::WebService).unwrap();
        for seq in 0..25 {
            let c = e.execute(Payload::Invoke {
                dapp: DApp::WebService,
                seq,
                call: None,
            });
            assert!(c.ok);
        }
        let state = &e.contract().unwrap().initial_state;
        assert_eq!(state.load(diablo_contracts::webservice::COUNTER_KEY), 25);
    }

    #[test]
    fn profiled_mode_matches_exact_costs() {
        let mut exact =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Gaming).unwrap();
        let mut prof =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Profiled, DApp::Gaming).unwrap();
        for seq in 0..50 {
            let a = exact.execute(Payload::Invoke {
                dapp: DApp::Gaming,
                seq,
                call: None,
            });
            let b = prof.execute(Payload::Invoke {
                dapp: DApp::Gaming,
                seq,
                call: None,
            });
            assert_eq!(a.ok, b.ok);
            // Exact costs drift slightly as players reflect off walls
            // (branches differ per state); the profiled cost must stay
            // within a few percent of the live one.
            let drift = (a.gas as f64 - b.gas as f64).abs() / a.gas as f64;
            assert!(
                drift < 0.05,
                "seq {seq}: exact {} vs profiled {}",
                a.gas,
                b.gas
            );
        }
    }

    #[test]
    fn profiled_mode_is_fast_for_mobility() {
        let mut e =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Profiled, DApp::Mobility).unwrap();
        let first = e.execute(Payload::Invoke {
            dapp: DApp::Mobility,
            seq: 0,
            call: None,
        });
        assert!(first.ok);
        assert!(first.ops > 1_000_000);
        // Replays are cache hits with identical cost.
        for seq in 1..100 {
            let c = e.execute(Payload::Invoke {
                dapp: DApp::Mobility,
                seq,
                call: None,
            });
            assert_eq!(c.ops, first.ops);
        }
    }

    #[test]
    fn profiled_cache_distinguishes_arg_classes() {
        // Two shapes of the same entry: the default gaming call
        // update(1, 1) and an explicit zero-argument update(). Their
        // intrinsic calldata costs differ, so a cache keyed by entry
        // name alone would replay whichever shape ran first for both.
        let mut prof =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Profiled, DApp::Gaming).unwrap();
        let mut exact =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Gaming).unwrap();
        let two_args = Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 0,
            call: None, // resolves to update(1, 1)
        };
        let no_args = Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 1,
            call: Some(CallSel {
                entry: 0, // "update"
                args: [0, 0],
                argc: 0,
            }),
        };
        let a = prof.execute(two_args);
        let b = prof.execute(no_args);
        assert_ne!(a.gas, b.gas, "distinct arg classes must not share a cached cost");
        // Each class replays its own cost and matches exact execution's
        // intrinsic difference.
        let a2 = prof.execute(Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 2,
            call: None,
        });
        assert_eq!(a.gas, a2.gas);
        let ea = exact.execute(Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 0,
            call: None,
        });
        assert_eq!(a.gas, ea.gas);
    }

    #[test]
    fn budget_exceeded_is_not_ok() {
        let mut e =
            ExecutionEngine::with_dapp(VmFlavor::Ebpf, ExecMode::Exact, DApp::Mobility).unwrap();
        let c = e.execute(Payload::Invoke {
            dapp: DApp::Mobility,
            seq: 0,
            call: None,
        });
        assert!(!c.ok);
        assert!(c.gas > 0);
    }

    #[test]
    fn probe_flags_hard_budget_chains() {
        let e =
            ExecutionEngine::with_dapp(VmFlavor::MoveVm, ExecMode::Exact, DApp::Mobility).unwrap();
        let probe = e.probe().expect("contract deployed");
        assert!(probe.is_err());
        let native = ExecutionEngine::native(VmFlavor::MoveVm, ExecMode::Exact);
        assert!(native.probe().is_none());
    }

    #[test]
    fn parallel_block_execution_matches_serial() {
        let payloads: Vec<Payload> = (0..200)
            .map(|seq| {
                if seq % 9 == 0 {
                    Payload::Transfer
                } else {
                    Payload::Invoke {
                        dapp: DApp::Exchange,
                        seq,
                        call: None,
                    }
                }
            })
            .collect();
        let mut serial =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Exchange).unwrap();
        let want = serial.execute_block(&payloads);
        for threads in [2, 4, 8] {
            let mut par =
                ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Exchange)
                    .unwrap()
                    .with_concurrency(Concurrency::Parallel(threads));
            let got = par.execute_block(&payloads);
            assert_eq!(want, got, "{threads} threads");
            assert_eq!(
                serial.contract().unwrap().initial_state,
                par.contract().unwrap().initial_state,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn optimistic_block_execution_matches_serial() {
        // Gaming's dynamic per-player footprints are the case the
        // static scheduler serializes; the optimistic engine must still
        // agree with serial bit for bit — costs and state — at every
        // thread count, transfers interleaved.
        let payloads: Vec<Payload> = (0..150)
            .map(|seq| {
                if seq % 11 == 0 {
                    Payload::Transfer
                } else {
                    Payload::Invoke {
                        dapp: DApp::Gaming,
                        seq,
                        call: Some(CallSel {
                            entry: 0, // "update"
                            args: [1 + (seq % 5) as i32, 1],
                            argc: 2,
                        }),
                    }
                }
            })
            .collect();
        let mut serial =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Gaming).unwrap();
        let want = serial.execute_block(&payloads);
        for threads in [1, 2, 4, 8] {
            let mut opt =
                ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Gaming)
                    .unwrap()
                    .with_concurrency(Concurrency::Optimistic(threads));
            let got = opt.execute_block(&payloads);
            assert_eq!(want, got, "{threads} threads");
            assert_eq!(
                serial.contract().unwrap().initial_state,
                opt.contract().unwrap().initial_state,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn concurrency_mode_grammar_roundtrips() {
        assert_eq!(Concurrency::from_mode("serial", 4), Some(Concurrency::Serial));
        assert_eq!(
            Concurrency::from_mode("parallel", 4),
            Some(Concurrency::Parallel(4))
        );
        assert_eq!(
            Concurrency::from_mode("optimistic", 8),
            Some(Concurrency::Optimistic(8))
        );
        assert_eq!(Concurrency::from_mode("speculative", 4), None);
        for c in [
            Concurrency::Serial,
            Concurrency::Parallel(4),
            Concurrency::Optimistic(8),
        ] {
            assert_eq!(Concurrency::from_mode(c.mode_name(), c.threads()), Some(c));
        }
    }

    #[test]
    fn youtube_on_avm_is_unsupported() {
        let err = ExecutionEngine::with_dapp(VmFlavor::Avm, ExecMode::Exact, DApp::VideoSharing)
            .unwrap_err();
        assert!(err.reason.contains("128"));
    }
}
