//! Transaction execution at block-commit time.
//!
//! Wraps the `diablo-vm` interpreter behind two modes:
//!
//! - [`ExecMode::Exact`] executes every committed transaction through the
//!   interpreter against live contract state — bit-faithful, used by the
//!   integration tests (e.g. the FIFA counter must equal the number of
//!   committed `add`s).
//! - [`ExecMode::Profiled`] executes the first transaction of each
//!   (entry, arg-class) through the interpreter, caches its cost, and
//!   replays the cached cost for the rest, re-validating with a real
//!   execution every [`PROFILE_REFRESH`] transactions. Large experiments
//!   (millions of transactions, a 1.4 M-op Mobility call each) would be
//!   intractable otherwise; the cost of a DApp call is constant across
//!   calls up to argument variation, which the refresh executions verify.

use std::collections::HashMap;

use diablo_contracts::{build, calls, Contract, DApp, Unsupported};
use diablo_vm::{ExecError, Interpreter, TxContext, VmFlavor};

use crate::tx::{CallSel, Payload};

/// How often profiled mode re-runs a real execution per cache entry.
pub const PROFILE_REFRESH: u64 = 1024;

/// Execution fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Interpret every transaction.
    Exact,
    /// Interpret once per call class, replay cached costs after.
    Profiled,
}

/// The cost and outcome of executing one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCost {
    /// Gas (or compute units) charged by the flavor's schedule,
    /// including the intrinsic admission cost.
    pub gas: u64,
    /// Instructions executed (CPU-time proxy).
    pub ops: u64,
    /// Whether execution succeeded.
    pub ok: bool,
}

/// Coarse argument class for the profiled cache. Calls of one entry
/// point are assumed to cost the same only when they share an argument
/// count and a payload-size magnitude; entries invoked with different
/// shapes (e.g. `update()` vs `update(1, 1)`) get distinct cache slots
/// instead of silently replaying each other's cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ArgClass {
    /// Number of call arguments.
    argc: u8,
    /// Bit length of the payload size (0 for no payload), so payloads
    /// within a factor of two share a class.
    payload_pow2: u8,
}

impl ArgClass {
    fn of(call: &calls::CallSpec) -> ArgClass {
        ArgClass {
            argc: call.args.len() as u8,
            payload_pow2: (u64::BITS - call.payload_bytes.leading_zeros()) as u8,
        }
    }
}

/// Executes transactions for one chain's VM flavor.
#[derive(Debug)]
pub struct ExecutionEngine {
    flavor: VmFlavor,
    interpreter: Interpreter,
    mode: ExecMode,
    /// The deployed contract for the experiment's DApp (if any).
    contract: Option<Contract>,
    /// Profiled-mode cache: (entry, arg class) → (cost, replays since
    /// refresh).
    cache: HashMap<(&'static str, ArgClass), (ExecCost, u64)>,
}

/// Gas cost of a native transfer on each flavor (the EVM intrinsic for
/// geth; small flat costs elsewhere).
fn transfer_gas(flavor: VmFlavor) -> u64 {
    match flavor {
        VmFlavor::Geth => 21_000,
        VmFlavor::Avm => 1,
        VmFlavor::MoveVm => 600,
        VmFlavor::Ebpf => 1_500,
    }
}

impl ExecutionEngine {
    /// An engine with no deployed contract (native-transfer workloads).
    pub fn native(flavor: VmFlavor, mode: ExecMode) -> Self {
        ExecutionEngine {
            flavor,
            interpreter: Interpreter::new(flavor),
            mode,
            contract: None,
            cache: HashMap::new(),
        }
    }

    /// An engine with `dapp` deployed. Fails with the paper's
    /// explanation when the DApp cannot be built for the flavor (YouTube
    /// on the AVM).
    pub fn with_dapp(flavor: VmFlavor, mode: ExecMode, dapp: DApp) -> Result<Self, Unsupported> {
        let contract = build(dapp, flavor)?;
        Ok(ExecutionEngine {
            flavor,
            interpreter: Interpreter::new(flavor),
            mode,
            contract: Some(contract),
            cache: HashMap::new(),
        })
    }

    /// The engine's VM flavor.
    pub fn flavor(&self) -> VmFlavor {
        self.flavor
    }

    /// The deployed contract, if any.
    pub fn contract(&self) -> Option<&Contract> {
        self.contract.as_ref()
    }

    /// Dry-runs one representative call of the deployed DApp; used before
    /// an experiment to classify the chain as able or unable ("budget
    /// exceeded") to run the DApp — the X marks of Figure 5.
    pub fn probe(&self) -> Option<Result<(), ExecError>> {
        let c = self.contract.as_ref()?;
        Some(c.probe().map(|_| ()))
    }

    /// Executes (or replays) one transaction, returning its cost.
    pub fn execute(&mut self, payload: Payload) -> ExecCost {
        match payload {
            Payload::Transfer => ExecCost {
                gas: transfer_gas(self.flavor),
                ops: 10,
                ok: true,
            },
            Payload::Invoke { dapp, seq, call } => self.execute_invoke(dapp, seq, call),
        }
    }

    /// Resolves a payload to the concrete call it performs.
    fn resolve(dapp: DApp, seq: u64, sel: Option<CallSel>) -> calls::CallSpec {
        match sel {
            None => calls::call_for(dapp, seq),
            Some(sel) => {
                let args: Vec<i64> = sel.args[..sel.argc as usize]
                    .iter()
                    .map(|&a| a as i64)
                    .collect();
                calls::call_for_entry(dapp, sel.entry, &args)
            }
        }
    }

    fn execute_invoke(&mut self, dapp: DApp, seq: u64, sel: Option<CallSel>) -> ExecCost {
        let call = Self::resolve(dapp, seq, sel);
        let key = (call.entry, ArgClass::of(&call));
        if self.mode == ExecMode::Profiled {
            if let Some(&(cost, age)) = self.cache.get(&key) {
                if age < PROFILE_REFRESH {
                    self.cache.insert(key, (cost, age + 1));
                    return cost;
                }
            }
        }
        let cost = self.interpret(dapp, seq, sel);
        if self.mode == ExecMode::Profiled {
            self.cache.insert(key, (cost, 0));
        }
        cost
    }

    fn interpret(&mut self, dapp: DApp, seq: u64, sel: Option<CallSel>) -> ExecCost {
        let call = Self::resolve(dapp, seq, sel);
        let schedule = self.flavor.schedule();
        let intrinsic = schedule.intrinsic_cost(8 * call.args.len() as u64 + call.payload_bytes);
        let Some(contract) = self.contract.as_mut() else {
            // No contract deployed: treat as a transfer-priced no-op.
            return ExecCost {
                gas: transfer_gas(self.flavor),
                ops: 10,
                ok: true,
            };
        };
        let ctx = TxContext {
            caller: (seq % 10_000) as i64 + 1,
            args: call.args,
            payload_bytes: call.payload_bytes,
            gas_limit: u64::MAX,
        };
        // Every committed transaction goes through the prepared fast
        // path; the name-keyed execute() remains only as the fallback
        // for entries the prepared program does not know (none today —
        // preparation interns every entry at build time).
        let result = match contract.prepared.entry_id(call.entry) {
            Some(entry) => self.interpreter.execute_prepared(
                &contract.prepared,
                entry,
                &ctx,
                &mut contract.initial_state,
            ),
            None => self.interpreter.execute(
                &contract.program,
                call.entry,
                &ctx,
                &mut contract.initial_state,
            ),
        };
        match result {
            Ok(receipt) => ExecCost {
                gas: receipt.gas_used + intrinsic,
                ops: receipt.ops_executed,
                ok: true,
            },
            Err(ExecError::BudgetExceeded { used, .. }) => {
                // The hard budget was consumed before the abort.
                ExecCost {
                    gas: used + intrinsic,
                    ops: used,
                    ok: false,
                }
            }
            Err(_) => ExecCost {
                gas: intrinsic,
                ops: 100,
                ok: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_cost_the_evm_intrinsic() {
        let mut e = ExecutionEngine::native(VmFlavor::Geth, ExecMode::Exact);
        let c = e.execute(Payload::Transfer);
        assert_eq!(c.gas, 21_000);
        assert!(c.ok);
    }

    #[test]
    fn exact_mode_executes_real_state_effects() {
        let mut e =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::WebService).unwrap();
        for seq in 0..25 {
            let c = e.execute(Payload::Invoke {
                dapp: DApp::WebService,
                seq,
                call: None,
            });
            assert!(c.ok);
        }
        let state = &e.contract().unwrap().initial_state;
        assert_eq!(state.load(diablo_contracts::webservice::COUNTER_KEY), 25);
    }

    #[test]
    fn profiled_mode_matches_exact_costs() {
        let mut exact =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Gaming).unwrap();
        let mut prof =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Profiled, DApp::Gaming).unwrap();
        for seq in 0..50 {
            let a = exact.execute(Payload::Invoke {
                dapp: DApp::Gaming,
                seq,
                call: None,
            });
            let b = prof.execute(Payload::Invoke {
                dapp: DApp::Gaming,
                seq,
                call: None,
            });
            assert_eq!(a.ok, b.ok);
            // Exact costs drift slightly as players reflect off walls
            // (branches differ per state); the profiled cost must stay
            // within a few percent of the live one.
            let drift = (a.gas as f64 - b.gas as f64).abs() / a.gas as f64;
            assert!(
                drift < 0.05,
                "seq {seq}: exact {} vs profiled {}",
                a.gas,
                b.gas
            );
        }
    }

    #[test]
    fn profiled_mode_is_fast_for_mobility() {
        let mut e =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Profiled, DApp::Mobility).unwrap();
        let first = e.execute(Payload::Invoke {
            dapp: DApp::Mobility,
            seq: 0,
            call: None,
        });
        assert!(first.ok);
        assert!(first.ops > 1_000_000);
        // Replays are cache hits with identical cost.
        for seq in 1..100 {
            let c = e.execute(Payload::Invoke {
                dapp: DApp::Mobility,
                seq,
                call: None,
            });
            assert_eq!(c.ops, first.ops);
        }
    }

    #[test]
    fn profiled_cache_distinguishes_arg_classes() {
        // Two shapes of the same entry: the default gaming call
        // update(1, 1) and an explicit zero-argument update(). Their
        // intrinsic calldata costs differ, so a cache keyed by entry
        // name alone would replay whichever shape ran first for both.
        let mut prof =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Profiled, DApp::Gaming).unwrap();
        let mut exact =
            ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Gaming).unwrap();
        let two_args = Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 0,
            call: None, // resolves to update(1, 1)
        };
        let no_args = Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 1,
            call: Some(CallSel {
                entry: 0, // "update"
                args: [0, 0],
                argc: 0,
            }),
        };
        let a = prof.execute(two_args);
        let b = prof.execute(no_args);
        assert_ne!(a.gas, b.gas, "distinct arg classes must not share a cached cost");
        // Each class replays its own cost and matches exact execution's
        // intrinsic difference.
        let a2 = prof.execute(Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 2,
            call: None,
        });
        assert_eq!(a.gas, a2.gas);
        let ea = exact.execute(Payload::Invoke {
            dapp: DApp::Gaming,
            seq: 0,
            call: None,
        });
        assert_eq!(a.gas, ea.gas);
    }

    #[test]
    fn budget_exceeded_is_not_ok() {
        let mut e =
            ExecutionEngine::with_dapp(VmFlavor::Ebpf, ExecMode::Exact, DApp::Mobility).unwrap();
        let c = e.execute(Payload::Invoke {
            dapp: DApp::Mobility,
            seq: 0,
            call: None,
        });
        assert!(!c.ok);
        assert!(c.gas > 0);
    }

    #[test]
    fn probe_flags_hard_budget_chains() {
        let e =
            ExecutionEngine::with_dapp(VmFlavor::MoveVm, ExecMode::Exact, DApp::Mobility).unwrap();
        let probe = e.probe().expect("contract deployed");
        assert!(probe.is_err());
        let native = ExecutionEngine::native(VmFlavor::MoveVm, ExecMode::Exact);
        assert!(native.probe().is_none());
    }

    #[test]
    fn youtube_on_avm_is_unsupported() {
        let err = ExecutionEngine::with_dapp(VmFlavor::Avm, ExecMode::Exact, DApp::VideoSharing)
            .unwrap_err();
        assert!(err.reason.contains("128"));
    }
}
