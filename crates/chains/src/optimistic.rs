//! Optimistic (Block-STM-style) parallel block execution.
//!
//! The static [`crate::parallel::ParallelExecutor`] schedules from
//! deploy-time read/write sets and must serialize any transaction whose
//! storage footprint is dynamic — which is exactly the shape of the
//! paper's most realistic traffic (per-player gaming cells, hot
//! exchange accounts). [`OptimisticExecutor`] removes that restriction
//! by speculating instead of planning:
//!
//! 1. **Speculate.** Every not-yet-committed transaction executes
//!    against a [`SpeculativeOverlay`]: reads resolve through a frozen
//!    [`MvMemory`] of the other transactions' current speculative
//!    writes (highest-indexed writer below the reader, else committed
//!    state) and are recorded as `(key, value)` pairs; writes buffer in
//!    a private delta.
//! 2. **Validate, in commit order.** A sequential sweep re-checks each
//!    transaction's recorded read-set against the committed state as it
//!    stands at the transaction's turn. All values match → the
//!    speculation is bit-identical to a serial execution (the
//!    interpreter is a deterministic function of its observed loads)
//!    and its delta commits as-is.
//! 3. **Re-execute.** A transaction whose reads went stale re-runs in
//!    the next round against the refreshed view; after
//!    [`MAX_SPECULATIVE_EXECS`] wasted speculations it is executed
//!    serially in place, which is always exact. Limit-suspect outcomes
//!    (a speculative `StateLimitExceeded`, or a commit that would
//!    overflow the flavor's entry cap) also take the serial path,
//!    because entry-count faults depend on global state that concurrent
//!    overlays cannot observe.
//!
//! **Determinism.** Each round's view is frozen before any worker
//! starts, so every speculation — and therefore every read-set, delta,
//! validation verdict and re-execution decision — is a pure function of
//! `(committed state, txs)`. The worker count only changes how the
//! round's executions are distributed over threads, never which
//! executions happen; receipts, gas, final state *and the telemetry
//! counters below* are bit-identical at any thread count, including 1.
//! `tests/optimistic_differential.rs` proves the differential guarantee
//! property-style; `docs/EXECUTION.md` §4 gives the full argument.
//!
//! Unlike the static executor there is no planning prepass and no
//! serial-segment splitting: dynamic footprints are the normal case
//! here, not the fallback.

use diablo_vm::{
    ContractState, ExecError, Interpreter, MvMemory, OverlayDelta, PreparedProgram, ReadSet,
    Receipt, SpeculativeOverlay, StateLimits,
};

use crate::parallel::BlockTx;

/// How many times one transaction may execute speculatively (initial
/// run included) before the executor stops betting on it and re-executes
/// it serially at its commit turn. Two attempts let one round of
/// refreshed estimates resolve short dependency chains; anything hotter
/// converges through the exact serial valve instead of thrashing.
pub const MAX_SPECULATIVE_EXECS: u32 = 2;

/// One stored speculation: what the execution observed, what it would
/// write, and the caller-mapped outcome to return if it commits.
struct Speculation<R> {
    reads: ReadSet,
    delta: OverlayDelta,
    mapped: R,
    /// The receipt was `Err(StateLimitExceeded)`: the verdict depends on
    /// an entry count this speculation could not observe exactly, so it
    /// must not commit without a serial re-execution.
    limit_fault: bool,
}

/// Schedule-independent statistics of one optimistically executed
/// block, recorded into telemetry by [`OptimisticStats::record`].
///
/// Everything here is a pure function of `(committed state, txs)` —
/// the round structure never consults the worker count — so snapshots
/// stay byte-identical across thread counts, like
/// [`crate::parallel::PlanStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimisticStats {
    /// Transactions in the block.
    pub txs: usize,
    /// Speculation rounds until the block converged.
    pub rounds: u64,
    /// Speculative executions across all rounds (≥ `txs`; the excess is
    /// re-execution work caused by conflicts).
    pub speculations: u64,
    /// Stored speculations discarded because their read-set went stale.
    pub validation_aborts: u64,
    /// Transactions that fell through to an exact in-place serial
    /// execution (speculation exhausted or limit-suspect outcome).
    pub serial_reexecs: u64,
}

impl OptimisticStats {
    /// Records the statistics into the telemetry recorder.
    pub fn record(&self) {
        diablo_telemetry::counter!("optimistic.blocks");
        diablo_telemetry::counter!("optimistic.txs", self.txs as u64);
        diablo_telemetry::counter!("optimistic.speculations", self.speculations);
        diablo_telemetry::counter!("optimistic.validation_aborts", self.validation_aborts);
        diablo_telemetry::counter!("optimistic.serial_reexecs", self.serial_reexecs);
        diablo_telemetry::record!("optimistic.rounds_per_block", self.rounds);
    }
}

/// Executes committed batches by optimistic speculation while
/// preserving serial semantics bit for bit. See the module docs for the
/// protocol.
#[derive(Debug, Clone, Copy)]
pub struct OptimisticExecutor {
    threads: usize,
}

impl OptimisticExecutor {
    /// An executor that spreads each speculation round over up to
    /// `threads` workers. The thread count is pure throughput: results
    /// and telemetry are identical at any value, including 1.
    pub fn new(threads: usize) -> OptimisticExecutor {
        OptimisticExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `txs` against `state`, returning `map(index, outcome)`
    /// per transaction in canonical order — the same contract as
    /// [`crate::parallel::ParallelExecutor::execute`]: outcomes and the
    /// final state are identical to running
    /// [`Interpreter::execute_prepared`] over the batch serially, and
    /// `map` runs on the worker that produced the outcome.
    ///
    /// `map` may be invoked more than once for one index (each
    /// speculative re-execution maps its fresh receipt; only the
    /// committed invocation's value is returned), so it should be a
    /// pure condensation of the receipt.
    pub fn execute<R, F>(
        &self,
        vm: &Interpreter,
        prepared: &PreparedProgram,
        state: &mut ContractState,
        txs: &[BlockTx],
        map: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Result<Receipt, ExecError>) -> R + Sync,
    {
        self.execute_counting(vm, prepared, state, txs, map).0
    }

    /// Like [`OptimisticExecutor::execute`], additionally returning how
    /// many times each transaction ran (speculative executions plus any
    /// serial-valve re-execution). The counts are part of the
    /// deterministic protocol — identical at any worker count — and
    /// feed the lifecycle tracer's `executed` annotation.
    pub fn execute_counting<R, F>(
        &self,
        vm: &Interpreter,
        prepared: &PreparedProgram,
        state: &mut ContractState,
        txs: &[BlockTx],
        map: F,
    ) -> (Vec<R>, Vec<u32>)
    where
        R: Send,
        F: Fn(usize, Result<Receipt, ExecError>) -> R + Sync,
    {
        let n = txs.len();
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        let limits = prepared.flavor().state_limits();
        let mut slots: Vec<Option<Speculation<R>>> = (0..n).map(|_| None).collect();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut execs = vec![0u32; n];
        let mut stats = OptimisticStats {
            txs: n,
            ..OptimisticStats::default()
        };

        // `next` is the commit frontier: txs below it are final.
        let mut next = 0usize;
        while next < n {
            stats.rounds += 1;

            // Freeze this round's view from the surviving speculative
            // deltas. Committed effects live in `state`, not here.
            let mut mv = MvMemory::new();
            for (i, slot) in slots.iter().enumerate().skip(next) {
                if let Some(s) = slot {
                    mv.insert_delta(i as u32, &s.delta);
                }
            }

            // The round's execution set: transactions never executed,
            // plus stored speculations whose reads no longer resolve to
            // the recorded values under the frozen view — unless their
            // speculation budget is spent (those wait for the serial
            // valve at their commit turn instead of thrashing).
            let run: Vec<usize> = (next..n)
                .filter(|&i| match &slots[i] {
                    None => true,
                    Some(s) => {
                        execs[i] < MAX_SPECULATIVE_EXECS
                            && !reads_hold(&s.reads, state, &mv, i as u32)
                    }
                })
                .collect();
            stats.validation_aborts += run.iter().filter(|&&i| slots[i].is_some()).count() as u64;
            stats.speculations += run.len() as u64;
            for &i in &run {
                execs[i] += 1;
            }

            // Speculate in parallel over contiguous chunks of the run
            // set. Each worker reads only the frozen view and the
            // committed base, so chunking is pure load-balancing.
            if !run.is_empty() {
                diablo_telemetry::span!("optimistic.speculate");
                let committed: &ContractState = state;
                let mv = &mv;
                let map = &map;
                let chunk = run.len().div_ceil(self.threads.min(run.len()));
                let produced: Vec<Vec<(usize, Speculation<R>)>> =
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = run
                            .chunks(chunk)
                            .map(|ixs| {
                                scope.spawn(move || {
                                    ixs.iter()
                                        .map(|&i| {
                                            let (entry, ctx) = &txs[i];
                                            let mut view =
                                                SpeculativeOverlay::new(committed, mv, i as u32);
                                            let r = vm
                                                .execute_prepared(prepared, *entry, ctx, &mut view);
                                            let limit_fault =
                                                matches!(r, Err(ExecError::StateLimitExceeded));
                                            let (reads, delta) = view.into_parts();
                                            let spec = Speculation {
                                                reads,
                                                delta,
                                                mapped: map(i, r),
                                                limit_fault,
                                            };
                                            (i, spec)
                                        })
                                        .collect()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("speculation worker panicked"))
                            .collect()
                    });
                for batch in produced {
                    for (i, spec) in batch {
                        slots[i] = Some(spec);
                    }
                }
            }

            // Commit-order validation sweep. `state` evolves as deltas
            // land, so later validations see earlier commits — exactly
            // the state a serial execution would be at.
            diablo_telemetry::span!("optimistic.validate");
            while next < n {
                let s = slots[next].as_ref().expect("uncommitted txs are always speculated");
                let valid = s.reads.iter().all(|&(key, value)| state.load(key) == value);
                if valid && !s.limit_fault && entry_budget_holds(state, &s.delta, &limits) {
                    let s = slots[next].take().expect("checked above");
                    state.apply(s.delta);
                    out[next] = Some(s.mapped);
                    next += 1;
                    continue;
                }
                if !valid && execs[next] < MAX_SPECULATIVE_EXECS {
                    // Worth another speculation round: the next round's
                    // view resolves this transaction's reads against
                    // the now-advanced committed prefix.
                    break;
                }
                // Serial valve: speculation exhausted or limit-suspect.
                // Executing at the commit frontier against the real
                // state is exact by definition.
                if !valid {
                    stats.validation_aborts += 1;
                }
                stats.serial_reexecs += 1;
                // The re-execution commits immediately below, so the
                // budget check never sees this increment.
                execs[next] += 1;
                slots[next] = None;
                let (entry, ctx) = &txs[next];
                let r = vm.execute_prepared(prepared, *entry, ctx, state);
                out[next] = Some(map(next, r));
                next += 1;
            }
        }

        if diablo_telemetry::enabled() {
            stats.record();
        }
        let out = out
            .into_iter()
            .map(|r| r.expect("every transaction committed"))
            .collect();
        (out, execs)
    }
}

/// Whether every recorded read still resolves to its recorded value for
/// a reader at `reader`, under `(committed, mv)`. Used for round
/// scheduling; the commit sweep re-checks against the committed state
/// alone (where `mv` holds nothing below the frontier, the two checks
/// coincide).
fn reads_hold(reads: &ReadSet, committed: &ContractState, mv: &MvMemory, reader: u32) -> bool {
    reads.iter().all(|&(key, value)| {
        mv.read(key, reader).unwrap_or_else(|| committed.load(key)) == value
    })
}

/// Whether committing `delta` keeps the entry count within the flavor's
/// cap. Entry counts only grow (rollback restores values but never
/// removes keys), so "final count fits" is exactly "every intermediate
/// new-key store would have succeeded serially" — see
/// `docs/EXECUTION.md` §4.3.
fn entry_budget_holds(state: &ContractState, delta: &OverlayDelta, limits: &StateLimits) -> bool {
    if delta.written_keys() == 0 {
        return true;
    }
    let new_keys = delta
        .entries()
        .filter(|&(key, _)| !state.contains_key(key))
        .count();
    state.entry_count() + new_keys <= limits.max_entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_contracts::{build, DApp};
    use diablo_vm::{TxContext, VmFlavor, Word};

    fn block(prepared: &PreparedProgram, specs: &[(&str, Vec<Word>)]) -> Vec<BlockTx> {
        specs
            .iter()
            .enumerate()
            .map(|(seq, (entry, args))| {
                let entry = prepared.entry_id(entry).expect("entry exists");
                let ctx = TxContext {
                    caller: (seq % 10_000) as i64 + 1,
                    args: args.clone(),
                    payload_bytes: 0,
                    gas_limit: u64::MAX,
                };
                (entry, ctx)
            })
            .collect()
    }

    fn serial(
        vm: &Interpreter,
        prepared: &PreparedProgram,
        state: &mut ContractState,
        txs: &[BlockTx],
    ) -> Vec<Result<Receipt, ExecError>> {
        txs.iter()
            .map(|(entry, ctx)| vm.execute_prepared(prepared, *entry, ctx, state))
            .collect()
    }

    fn assert_optimistic_matches_serial(
        flavor: VmFlavor,
        dapp: DApp,
        specs: &[(&str, Vec<Word>)],
        threads: usize,
    ) {
        let contract = build(dapp, flavor).expect("buildable");
        let vm = Interpreter::new(flavor);
        let txs = block(&contract.prepared, specs);

        let mut s_state = contract.initial_state.clone();
        let want = serial(&vm, &contract.prepared, &mut s_state, &txs);

        let mut o_state = contract.initial_state.clone();
        let got = OptimisticExecutor::new(threads).execute(
            &vm,
            &contract.prepared,
            &mut o_state,
            &txs,
            |_, r| r,
        );

        assert_eq!(want, got, "{dapp:?} receipts diverged at {threads} threads");
        assert_eq!(s_state, o_state, "{dapp:?} state diverged at {threads} threads");
    }

    #[test]
    fn dynamic_footprints_execute_optimistically_and_match_serial() {
        // The exact block the static executor must serialize (gaming
        // updates have dynamic per-player keys): three players → short
        // conflict chains that speculation resolves.
        let specs: Vec<(&str, Vec<Word>)> =
            (0..48).map(|i| ("update", vec![1 + (i % 3), 1])).collect();
        for threads in [1, 2, 4, 8] {
            assert_optimistic_matches_serial(VmFlavor::Geth, DApp::Gaming, &specs, threads);
        }
    }

    #[test]
    fn hot_key_chain_converges_to_serial_result() {
        // Worst case: every transaction updates the same player, so
        // every speculation past the frontier is stale. The executor
        // must converge through the serial valve, bit-identically.
        let specs: Vec<(&str, Vec<Word>)> =
            (0..40).map(|_| ("update", vec![1, 1])).collect();
        for threads in [2, 8] {
            assert_optimistic_matches_serial(VmFlavor::Geth, DApp::Gaming, &specs, threads);
        }
    }

    #[test]
    fn conflict_light_exchange_block_matches_serial() {
        let buys = ["buyGoogle", "buyApple", "buyFacebook", "buyAmazon", "buyMicrosoft"];
        let specs: Vec<(&str, Vec<Word>)> =
            (0..60).map(|i| (buys[i % buys.len()], vec![])).collect();
        for threads in [2, 4, 8] {
            assert_optimistic_matches_serial(VmFlavor::Geth, DApp::Exchange, &specs, threads);
        }
    }

    #[test]
    fn mixed_readers_and_writers_match_serial() {
        // checkStock reads what every buy writes: validation aborts
        // cascade, re-execution must restore serial semantics.
        let mut specs: Vec<(&str, Vec<Word>)> = Vec::new();
        let buys = ["buyGoogle", "buyApple", "buyFacebook", "buyAmazon", "buyMicrosoft"];
        for i in 0..30 {
            specs.push((buys[i % buys.len()], vec![]));
            if i % 4 == 0 {
                specs.push(("checkStock", vec![]));
            }
        }
        assert_optimistic_matches_serial(VmFlavor::Geth, DApp::Exchange, &specs, 4);
    }

    #[test]
    fn entry_limit_faults_match_serial_on_avm() {
        // The AVM caps contract state at 64 entries; gaming updates of
        // distinct players create fresh cells until the cap trips. The
        // faulting transaction index must match serial exactly (the
        // limit-suspect path forces a serial re-execution).
        let specs: Vec<(&str, Vec<Word>)> =
            (0..80).map(|i| ("update", vec![1 + i, 1])).collect();
        for threads in [2, 8] {
            assert_optimistic_matches_serial(VmFlavor::Avm, DApp::Gaming, &specs, threads);
        }
    }

    #[test]
    fn results_are_thread_count_independent() {
        let specs: Vec<(&str, Vec<Word>)> =
            (0..30).map(|i| ("update", vec![1 + (i % 5), 2])).collect();
        let contract = build(DApp::Gaming, VmFlavor::Geth).expect("buildable");
        let vm = Interpreter::new(VmFlavor::Geth);
        let txs = block(&contract.prepared, &specs);

        let run = |threads: usize| {
            let mut state = contract.initial_state.clone();
            let receipts = OptimisticExecutor::new(threads).execute(
                &vm,
                &contract.prepared,
                &mut state,
                &txs,
                |_, r| r,
            );
            (receipts, state)
        };
        let one = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(one, run(threads), "outcome varies with {threads} threads");
        }
    }

    #[test]
    fn empty_and_single_tx_blocks_commit() {
        let contract = build(DApp::WebService, VmFlavor::Geth).expect("buildable");
        let vm = Interpreter::new(VmFlavor::Geth);
        let mut state = contract.initial_state.clone();
        let none: Vec<BlockTx> = Vec::new();
        let got =
            OptimisticExecutor::new(4).execute(&vm, &contract.prepared, &mut state, &none, |_, r| r);
        assert!(got.is_empty());

        let txs = block(&contract.prepared, &[("add", vec![])]);
        let got =
            OptimisticExecutor::new(4).execute(&vm, &contract.prepared, &mut state, &txs, |_, r| r);
        assert_eq!(got.len(), 1);
        assert!(got[0].is_ok());
        assert_eq!(state.load(diablo_contracts::webservice::COUNTER_KEY), 1);
    }
}
