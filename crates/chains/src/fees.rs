//! The London (EIP-1559) fee market.
//!
//! Ethereum and Avalanche run the London upgrade (§5.2): the base fee
//! moves with block fullness, and a transaction signed earlier "risks to
//! be underpriced" when the fee has risen since — it then sits in the
//! pool until the base fee falls back below its cap. Quorum explicitly
//! does *not* feature London (§5.2), which is one reason it commits
//! everything. This dynamic produces Ethereum's long commit tails in
//! Figure 6 (burst → fee spike → slow decay → late commits) and its
//! 0.09 % commit ratio under a sustained 10,000 TPS load (§6.3, where the
//! fee never falls back).

/// Base-fee state machine, in fixed-point millis (1000 = 1.0×).
#[derive(Debug, Clone)]
pub struct FeeMarket {
    /// Whether the chain runs London at all.
    enabled: bool,
    /// Current base fee, relative to genesis (millis).
    base_millis: u64,
    /// Fee-cap headroom clients sign with (millis): a client signing now
    /// stays eligible until the base fee exceeds `base × headroom`.
    headroom_millis: u64,
    /// Per-block multiplicative step at full blocks (millis, e.g. 1125).
    step_up_millis: u64,
    /// Target block fullness in millis (e.g. 500 = half-full target).
    target_fill_millis: u64,
}

impl FeeMarket {
    /// A disabled market (Quorum, and chains that price differently).
    pub fn disabled() -> Self {
        FeeMarket {
            enabled: false,
            base_millis: 1000,
            headroom_millis: 0,
            step_up_millis: 1000,
            target_fill_millis: 1000,
        }
    }

    /// The standard London market with a client headroom multiplier.
    pub fn london(headroom: f64) -> Self {
        FeeMarket {
            enabled: true,
            base_millis: 1000,
            headroom_millis: (headroom * 1000.0) as u64,
            step_up_millis: 1125,
            target_fill_millis: 500,
        }
    }

    /// Whether the market is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current base fee relative to genesis (1.0 at genesis).
    pub fn base(&self) -> f64 {
        self.base_millis as f64 / 1000.0
    }

    /// The fee cap (in base-fee millis) a client signing *now* attaches
    /// to its transaction.
    pub fn sign_fee_cap_millis(&self) -> u64 {
        if !self.enabled {
            return u64::MAX;
        }
        self.base_millis.saturating_mul(self.headroom_millis) / 1000
    }

    /// Whether a transaction with the given signed cap is currently
    /// priced well enough to be included.
    pub fn is_eligible(&self, fee_cap_millis: u64) -> bool {
        !self.enabled || fee_cap_millis >= self.base_millis
    }

    /// Advances the base fee after a block with the given fill ratio
    /// (0.0 empty … 1.0 full).
    pub fn on_block(&mut self, fill: f64) {
        if !self.enabled {
            return;
        }
        let fill_millis = (fill.clamp(0.0, 1.0) * 1000.0) as i64;
        let target = self.target_fill_millis as i64;
        // delta in [-1, 1] of the max step.
        let step = self.step_up_millis as i64 - 1000; // e.g. 125
        let adj = 1000 + step * (fill_millis - target) / target.max(1);
        self.base_millis = (self.base_millis as i64 * adj / 1000).max(1000) as u64;
        // Keep the value sane over pathological runs.
        self.base_millis = self.base_millis.min(1_000_000_000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_market_accepts_everything() {
        let mut m = FeeMarket::disabled();
        m.on_block(1.0);
        m.on_block(1.0);
        assert_eq!(m.base(), 1.0);
        assert!(m.is_eligible(0));
    }

    #[test]
    fn full_blocks_raise_the_fee() {
        let mut m = FeeMarket::london(2.0);
        let before = m.base();
        for _ in 0..10 {
            m.on_block(1.0);
        }
        assert!(
            m.base() > before * 2.0,
            "fee should ratchet, got {}",
            m.base()
        );
    }

    #[test]
    fn empty_blocks_decay_back_to_genesis_floor() {
        let mut m = FeeMarket::london(2.0);
        for _ in 0..20 {
            m.on_block(1.0);
        }
        let spiked = m.base();
        for _ in 0..200 {
            m.on_block(0.0);
        }
        assert!(m.base() < spiked);
        assert_eq!(m.base(), 1.0, "decays to the genesis floor");
    }

    #[test]
    fn target_fill_is_neutral() {
        let mut m = FeeMarket::london(2.0);
        for _ in 0..10 {
            m.on_block(0.5);
        }
        assert_eq!(m.base(), 1.0);
    }

    #[test]
    fn old_transactions_become_underpriced_then_eligible_again() {
        let mut m = FeeMarket::london(1.5);
        let cap = m.sign_fee_cap_millis();
        assert!(m.is_eligible(cap));
        // Burst: fee spikes past the cap.
        for _ in 0..8 {
            m.on_block(1.0);
        }
        assert!(
            !m.is_eligible(cap),
            "tx must go underpriced after the spike"
        );
        // Quiet period: fee decays, the old tx becomes eligible again —
        // the mechanism behind Ethereum's late commits in Figure 6.
        for _ in 0..100 {
            m.on_block(0.0);
        }
        assert!(m.is_eligible(cap));
    }

    #[test]
    fn fresh_signatures_track_the_fee() {
        let mut m = FeeMarket::london(1.5);
        for _ in 0..8 {
            m.on_block(1.0);
        }
        // A client signing after the spike is eligible at the new level.
        let cap = m.sign_fee_cap_millis();
        assert!(m.is_eligible(cap));
    }
}
