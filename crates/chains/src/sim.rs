//! The chain simulation world and the experiment driver.
//!
//! One [`Experiment`] = one chain × one deployment × one workload, the
//! unit every figure of the paper is built from. The simulation runs
//! three kinds of events:
//!
//! - **submission ticks** (every 100 ms): the collocated Diablo
//!   Secondaries inject the workload's transactions into their nodes'
//!   mempools, stamping submission times;
//! - **block production**: the chain's consensus produces blocks at its
//!   own cadence (fixed slots for Solana, throttled periods for
//!   Avalanche and Clique, commit-chained rounds for IBFT, pipelined
//!   rounds with a pacemaker for HotStuff, gossip-and-vote rounds for
//!   Algorand), each carrying admission, assembly, execution and
//!   consensus latency;
//! - **finality**: committed transactions are *decided* once the block
//!   gains the chain's confirmation depth and the polling client
//!   notices (§4, §5.2).

use std::collections::VecDeque;

use diablo_contracts::{calls, DApp};
use diablo_net::{DeploymentConfig, DeploymentKind, QuorumModel};
use diablo_sim::{DetRng, QueueBackend, Scheduler, SimDuration, SimTime, World};
use diablo_store::{BlockRoots, ReceiptRec, StateStore, StorageConfig, StorageReport};
use diablo_telemetry::trace::{self, TraceStage};
use diablo_workloads::Workload;

use crate::chain::Chain;
use crate::config::RunConfig;
use crate::exec::{Concurrency, ExecMode, ExecutionEngine};
use crate::faults::{FaultPlan, FaultTimeline};
use crate::fees::FeeMarket;
use crate::harness::{ChainHarness, PlannedTx};
use crate::mempool::{AdmitError, Mempool};
use crate::params::{ChainParams, ConsensusKind, SigVerify};
use crate::records::{BlockRecord, RunResult, TxRecord, TxStatus};
use crate::tx::{CallSel, Payload, TxMeta};

/// Submission tick length.
pub(crate) const TICK_MS: u64 = 100;

/// Events of the chain world.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Submit the transactions of tick `k`.
    Tick(u32),
    /// Produce (or attempt) the next block.
    Propose,
}

/// One benchmark run: chain, deployment, workload, knobs.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The chain under test.
    pub chain: Chain,
    /// The deployment scenario.
    pub deployment: DeploymentKind,
    /// The submission-rate curve.
    pub workload: Workload,
    /// DApp to invoke; `None` = native transfers.
    pub dapp: Option<DApp>,
    /// The run knobs (seed, execution, faults, storage, …), shared with
    /// every other entry point through [`crate::RunConfig`].
    pub run: RunConfig,
    /// Explicit deployment override (custom setups); `None` = the
    /// standard configuration of `deployment`.
    pub config: Option<DeploymentConfig>,
    /// Explicit function selection applied to every invocation (the
    /// spec's `function: "..."`); `None` = default per-DApp rotation.
    pub call: Option<CallSel>,
}

impl Experiment {
    /// A native-transfer experiment with default knobs.
    pub fn new(chain: Chain, deployment: DeploymentKind, workload: Workload) -> Self {
        Experiment {
            chain,
            deployment,
            workload,
            dapp: None,
            run: RunConfig::default(),
            config: None,
            call: None,
        }
    }

    /// Invokes `dapp` instead of native transfers.
    pub fn with_dapp(mut self, dapp: DApp) -> Self {
        self.dapp = Some(dapp);
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.run.seed = seed;
        self
    }

    /// Overrides the execution mode.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.run.exec_mode = mode;
        self
    }

    /// Overrides the block-commit concurrency.
    pub fn with_concurrency(mut self, concurrency: Concurrency) -> Self {
        self.run.concurrency = concurrency;
        self
    }

    /// Overrides the chain parameters (ablation studies).
    pub fn with_params(mut self, params: ChainParams) -> Self {
        self.run.params = Some(params);
        self
    }

    /// Overrides the drain window.
    pub fn with_grace(mut self, secs: u64) -> Self {
        self.run.grace_secs = secs;
        self
    }

    /// Injects faults (crashes, network slowdowns).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.run.faults = faults;
        self
    }

    /// Runs on an explicit deployment instead of the standard one
    /// (custom setup files, odd node counts).
    pub fn with_config(mut self, config: DeploymentConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Selects an explicit function (and literal arguments) for every
    /// invocation, e.g. a single NASDAQ stock's `buy*` entry.
    pub fn with_call(mut self, call: CallSel) -> Self {
        self.call = Some(call);
        self
    }

    /// Overrides the signature-verification cost curve (ablations).
    pub fn with_sig_verify(mut self, sig_verify: SigVerify) -> Self {
        self.run.sig_verify = Some(sig_verify);
        self
    }

    /// Runs the simulation kernel on an explicit event-queue backend
    /// (wheel-vs-heap differential runs and benches).
    pub fn with_queue_backend(mut self, queue: QueueBackend) -> Self {
        self.run.queue = queue;
        self
    }

    /// Enables the append-only state store: every committed block runs
    /// the execute → merkleize → persist → prune pipeline under
    /// `config`.
    pub fn with_storage(mut self, config: StorageConfig) -> Self {
        self.run.storage = Some(config);
        self
    }

    /// Enables per-transaction lifecycle tracing under the given
    /// sampling budget.
    pub fn with_trace(mut self, sample: diablo_telemetry::trace::TraceSample) -> Self {
        self.run.trace = Some(sample);
        self
    }

    /// Runs the experiment to completion.
    pub fn run(self) -> RunResult {
        let workload_name = self.workload.name().to_string();
        let workload_secs = self.workload.duration_secs() as f64;
        let options = self.run.clone();
        // An unbuildable or unrunnable DApp makes the whole chain
        // "unable" (Figure 5's X marks, Figure 2's missing bars).
        let config = self
            .config
            .clone()
            .unwrap_or_else(|| DeploymentConfig::standard(self.deployment));
        let harness = match ChainHarness::with_config(self.chain, config, self.dapp, options) {
            Ok(h) => h,
            Err(reason) => {
                return RunResult::unable(self.chain, workload_name, workload_secs, reason);
            }
        };
        // Plan the workload: spread each tick's transactions evenly,
        // round-robin senders over the chain's accounts.
        let accounts = harness.accounts() as u64;
        let ticks = self.workload.ticks(TICK_MS);
        let mut plan = Vec::with_capacity(self.workload.total_txs() as usize);
        let mut seq = 0u64;
        for (k, &count) in ticks.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let start = SimTime::from_millis(k as u64 * TICK_MS);
            let spacing = SimDuration::from_micros(TICK_MS * 1000 / count);
            for i in 0..count {
                let payload = match self.dapp {
                    Some(dapp) => Payload::Invoke {
                        dapp,
                        seq,
                        call: self.call,
                    },
                    None => Payload::Transfer,
                };
                plan.push(PlannedTx {
                    at: start + spacing * i,
                    sender: (seq % accounts) as u32,
                    payload,
                });
                seq += 1;
            }
        }
        harness.run(plan, &workload_name, workload_secs)
    }
}

/// The submission plan, flattened: one time-sorted vector plus per-tick
/// bounds, instead of one owned `Vec` per 100 ms tick.
///
/// Planning a long run used to allocate a bucket per tick and
/// `mem::take` each on submission; the flat layout keeps the whole plan
/// in one slab, indexes ticks as slices, and preserves input order
/// exactly (the input is time-sorted with stable ties).
pub(crate) struct TickPlan {
    txs: Vec<PlannedTx>,
    /// `bounds[k]..bounds[k + 1]` is tick `k`'s slice; `ticks + 1` long.
    bounds: Vec<u32>,
}

impl TickPlan {
    /// Builds the per-tick bounds over a time-sorted plan.
    pub(crate) fn from_sorted(txs: Vec<PlannedTx>, tick_us: u64) -> Self {
        debug_assert!(txs.windows(2).all(|w| w[0].at <= w[1].at));
        let last = txs.last().map(|t| t.at.as_micros()).unwrap_or(0);
        let ticks = (last / tick_us + 1) as usize;
        let mut bounds = Vec::with_capacity(ticks + 1);
        bounds.push(0u32);
        let mut i = 0usize;
        for k in 0..ticks {
            let end = (k as u64 + 1) * tick_us;
            while i < txs.len() && txs[i].at.as_micros() < end {
                i += 1;
            }
            bounds.push(i as u32);
        }
        TickPlan { txs, bounds }
    }

    /// Number of submission ticks.
    fn ticks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Index range of tick `k`'s transactions.
    fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.bounds[k] as usize..self.bounds[k + 1] as usize
    }

    /// Total planned transactions.
    fn len(&self) -> usize {
        self.txs.len()
    }
}

/// A block whose transactions await confirmation depth.
struct PendingFinality {
    /// Height at which the block committed.
    height: u64,
    /// Commit instant.
    committed: SimTime,
    /// `(record index, execution succeeded)` per transaction.
    txs: Vec<(u32, bool)>,
}

/// The simulation world for one chain run.
pub struct ChainSim {
    chain: Chain,
    params: ChainParams,
    qmodel: QuorumModel,
    rng: DetRng,
    pool: Mempool,
    fee: FeeMarket,
    engine: ExecutionEngine,
    /// Per-transaction records (the arena Secondaries report from).
    records: Vec<TxRecord>,
    /// The flattened submission plan (time-sorted, tick-bounded).
    plan: TickPlan,
    /// Current block height.
    height: u64,
    /// Consensus rounds attempted (proposals, including wasted ones) —
    /// the tracer's round annotation.
    rounds: u64,
    /// Rotating proposer index.
    proposer: usize,
    /// Median one-way gossip delay from each node site (seconds).
    site_gossip_secs: Vec<f64>,
    /// Per-transaction gas estimate (homogeneous workloads).
    gas_estimate: u64,
    /// Per-transaction executed-ops estimate (CPU-time proxy).
    ops_estimate: u64,
    /// Per-transaction wire size estimate.
    wire_estimate: u32,
    /// HotStuff pacemaker state: current timeout.
    pacemaker: SimDuration,
    /// Blocks awaiting confirmation depth.
    awaiting: VecDeque<PendingFinality>,
    /// Commit instant of each block, indexed by `height - 1`.
    commit_times: Vec<SimTime>,
    /// Block-explorer records, one per produced block.
    blocks: Vec<BlockRecord>,
    /// Per-sender id of the first dropped transaction: later
    /// transactions of that account are stalled behind the nonce gap
    /// (`u32::MAX` = no gap).
    broken_from: Vec<u32>,
    /// Submitted transactions per second (offered load; drives the
    /// admission-overload model).
    arrival_per_sec: Vec<u64>,
    /// End of the submission phase.
    workload_end: SimTime,
    /// Hard stop for block production.
    deadline: SimTime,
    /// Injected faults.
    faults: FaultPlan,
    /// The fault plan compiled against this deployment (sorted event
    /// timeline; all per-tick queries are O(log faults)).
    timeline: FaultTimeline,
    /// Delay multiplier from message loss in the current round
    /// (retransmissions); reset at every proposal.
    round_stretch: f64,
    /// The append-only state store, when the run enables the staged
    /// commit pipeline.
    store: Option<StateStore>,
    /// Live mode's verification pool: when attached, the modeled
    /// signature-verification delay is replaced with real, measured
    /// work (`crate::live`).
    live: Option<crate::live::LivePool>,
}

impl ChainSim {
    /// Builds the world from an explicit per-tick submission plan.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_plan(
        chain: Chain,
        params: ChainParams,
        config: &DeploymentConfig,
        qmodel: QuorumModel,
        mut engine: ExecutionEngine,
        plan: TickPlan,
        seed: u64,
        deadline: SimTime,
    ) -> Self {
        let rng = DetRng::new(seed ^ (chain as u64) << 8);
        let pool = Mempool::with_accounts(params.mempool, params.accounts as usize);
        let fee = match params.fee_headroom {
            Some(h) => FeeMarket::london(h),
            None => FeeMarket::disabled(),
        };
        let site_gossip_secs: Vec<f64> = (0..config.node_count())
            .map(|i| qmodel.median_delay_from(i))
            .collect();
        // Estimate the homogeneous per-transaction cost once.
        let dapp = engine.contract().map(|c| c.dapp);
        let probe_payload = match dapp {
            Some(dapp) => Payload::Invoke {
                dapp,
                seq: 0,
                call: None,
            },
            None => Payload::Transfer,
        };
        let probe_cost = engine.execute(probe_payload);
        let wire_estimate = match dapp {
            Some(dapp) => calls::call_for(dapp, 0).wire_bytes() as u32,
            None => 150,
        };
        let pacemaker = match params.consensus {
            ConsensusKind::HotStuff { pacemaker_base, .. } => pacemaker_base,
            _ => SimDuration::ZERO,
        };
        let total: usize = plan.len();
        let per_sec = (1000 / TICK_MS) as usize;
        let tick_counts: Vec<u64> = (0..plan.ticks())
            .map(|k| plan.range(k).len() as u64)
            .collect();
        let arrival_per_sec: Vec<u64> = tick_counts
            .chunks(per_sec)
            .map(|c| c.iter().sum())
            .collect();
        let accounts = params.accounts as usize;
        let workload_end = deadline;
        ChainSim {
            chain,
            params,
            qmodel,
            rng,
            pool,
            fee,
            engine,
            records: Vec::with_capacity(total),
            plan,
            height: 0,
            rounds: 0,
            proposer: 0,
            site_gossip_secs,
            gas_estimate: probe_cost.gas.max(1),
            ops_estimate: probe_cost.ops.max(1),
            wire_estimate,
            pacemaker,
            awaiting: VecDeque::new(),
            commit_times: Vec::new(),
            blocks: Vec::new(),
            broken_from: vec![u32::MAX; accounts.max(1)],
            arrival_per_sec,
            workload_end,
            deadline,
            faults: FaultPlan::none(),
            timeline: FaultTimeline::empty(),
            round_stretch: 1.0,
            store: None,
            live: None,
        }
    }

    /// Attaches live mode's verification pool: block execution now pays
    /// *measured* wall time for signature checks instead of the modeled
    /// curve.
    pub(crate) fn with_live_pool(mut self, pool: Option<crate::live::LivePool>) -> Self {
        self.live = pool;
        self
    }

    /// Enables the staged commit pipeline: every committed block is
    /// merkleized, persisted and pruned through `config`'s store.
    pub(crate) fn with_store(mut self, config: Option<StorageConfig>) -> Self {
        self.store = config.map(StateStore::new);
        self
    }

    /// Attaches an injected-fault schedule (compiled once against the
    /// deployment's node count).
    pub(crate) fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.timeline = faults.compile(self.qmodel.node_count());
        self.faults = faults;
        self
    }

    /// Number of submission ticks in the plan.
    pub(crate) fn tick_count(&self) -> usize {
        self.plan.ticks()
    }

    /// Hard stop for block production.
    pub(crate) fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// Consumes the world, yielding the per-transaction records, the
    /// block-explorer records, and the storage report (when the store
    /// was enabled).
    pub(crate) fn into_records(self) -> (Vec<TxRecord>, Vec<BlockRecord>, Option<StorageReport>) {
        let storage = self.store.as_ref().map(StateStore::report);
        (self.records, self.blocks, storage)
    }

    /// Submits the transactions of one tick.
    fn submit_tick(&mut self, _now: SimTime, k: u32) {
        let range = self.plan.range(k as usize);
        let nodes = self.site_gossip_secs.len().max(1);
        for i in range {
            // `PlannedTx` is `Copy`: reading out of the flat plan keeps
            // the borrow checker away from the mutations below.
            let planned = self.plan.txs[i];
            let id = self.records.len() as u32;
            self.records.push(TxRecord::submitted_at(planned.at));
            trace::emit(
                id as u64,
                TraceStage::Submitted,
                planned.at.as_micros(),
                (planned.sender % self.params.accounts.max(1)) as u64,
                0,
            );
            // The collocated Secondary submits to its nearest node; the
            // transaction must gossip to the proposers before inclusion.
            let mut site = (id as usize) % nodes;
            let mut submit_at = planned.at;
            if !self.timeline.is_empty() {
                // Corrupted submissions are rejected by the node; the
                // client retries with exponential backoff until its
                // policy runs out, then reports the transaction
                // rejected.
                match self.resolve_submission(planned.at) {
                    Some(at) => {
                        if at > planned.at {
                            trace::emit(
                                id as u64,
                                TraceStage::Retried,
                                at.as_micros(),
                                at.since(planned.at).as_micros(),
                                0,
                            );
                        }
                        submit_at = at;
                    }
                    None => {
                        let decided = planned.at + self.faults.retry_policy().timeout;
                        let rec = &mut self.records[id as usize];
                        rec.status = TxStatus::Rejected;
                        rec.decided = Some(decided);
                        trace::emit(id as u64, TraceStage::Rejected, decided.as_micros(), 0, 0);
                        continue;
                    }
                }
                // A crashed submission node refuses connections: the
                // client deterministically fails over to the next live
                // node.
                if self.timeline.is_crashed(site, submit_at) {
                    for off in 1..nodes {
                        let alt = (site + off) % nodes;
                        if !self.timeline.is_crashed(alt, submit_at) {
                            diablo_telemetry::counter!("client.submit.rerouted");
                            trace::emit(
                                id as u64,
                                TraceStage::Rerouted,
                                submit_at.as_micros(),
                                alt as u64,
                                0,
                            );
                            site = alt;
                            break;
                        }
                    }
                }
            }
            let mut gossip = SimDuration::from_secs_f64(self.site_gossip_secs[site]);
            if !self.timeline.is_empty() {
                // Lost gossip messages are retransmitted: the expected
                // propagation time stretches by 1/(1-loss).
                let loss = self.timeline.loss_rate(submit_at, site);
                if loss > 0.0 {
                    gossip = SimDuration::from_secs_f64(gossip.as_secs_f64() / (1.0 - loss));
                }
            }
            diablo_telemetry::record_duration!("net.submit.gossip_us", gossip);
            let mut available = submit_at + gossip;
            if !self.timeline.is_empty() {
                // A transaction entering a non-committing partition
                // component only reaches the proposers after the heal.
                if let Some(p) = self.timeline.partition_at(available) {
                    let comp = p.component.get(site).copied().unwrap_or(0);
                    if comp != p.committing {
                        let deferred_from = available;
                        available = available.max(p.until);
                        diablo_telemetry::counter!("net.partition.deferred");
                        trace::emit(
                            id as u64,
                            TraceStage::Deferred,
                            available.as_micros(),
                            available.since(deferred_from).as_micros(),
                            0,
                        );
                    }
                }
            }
            let tx = TxMeta {
                id,
                sender: planned.sender % self.params.accounts.max(1),
                payload: planned.payload,
                submitted: planned.at,
                available,
                wire_bytes: self.wire_estimate,
                fee_cap_millis: self.fee.sign_fee_cap_millis(),
            };
            let sender = tx.sender;
            match self.pool.admit(tx) {
                Ok(()) => {
                    trace::emit(id as u64, TraceStage::Admitted, available.as_micros(), 0, 0);
                }
                Err(AdmitError::PoolFull) => {
                    self.records[id as usize].status = TxStatus::DroppedPoolFull;
                    trace::emit(
                        id as u64,
                        TraceStage::DroppedPoolFull,
                        available.as_micros(),
                        0,
                        0,
                    );
                    if self.params.nonce_gaps {
                        // The dropped nonce stalls every *later*
                        // transaction of this account (geth nonce
                        // ordering); earlier ones still commit.
                        let slot = &mut self.broken_from[sender as usize];
                        *slot = (*slot).min(id);
                    }
                }
                Err(AdmitError::PerSenderLimit) => {
                    self.records[id as usize].status = TxStatus::DroppedPerSender;
                    trace::emit(
                        id as u64,
                        TraceStage::DroppedPerSender,
                        available.as_micros(),
                        0,
                        0,
                    );
                }
            }
        }
    }

    /// Resolves one submission against the corruption faults and the
    /// client retry policy: returns the instant of the first accepted
    /// attempt, or `None` when every attempt within the policy's
    /// timeout window was corrupted and rejected.
    fn resolve_submission(&mut self, planned_at: SimTime) -> Option<SimTime> {
        let policy = self.faults.retry_policy();
        let deadline = planned_at + policy.timeout;
        let mut attempt_at = planned_at;
        let mut backoff = policy.backoff;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 && attempt_at > deadline {
                break;
            }
            let rate = self.timeline.corruption_rate(attempt_at);
            if rate > 0.0 && self.rng.chance(rate) {
                diablo_telemetry::counter!("client.submit.corrupted");
                attempt_at = attempt_at + backoff;
                backoff = backoff * 2;
                continue;
            }
            return Some(attempt_at);
        }
        diablo_telemetry::counter!("client.submit.rejected");
        None
    }

    /// Effective per-block transaction capacity after gas limits and
    /// admission-overload degradation.
    fn block_capacity(&self, now: SimTime) -> usize {
        let by_gas = (self.params.block_gas_limit / self.gas_estimate) as usize;
        let mut base = self.params.block_tx_limit.min(by_gas.max(1));
        let is_invoke_run = self.engine.contract().is_some();
        if is_invoke_run {
            // Writes to one hot contract serialize in parallel runtimes
            // (Solana's banking stage): a hard per-block invoke cap.
            if let Some(cap) = self.params.invoke_tx_per_block {
                base = base.min(cap);
            }
        }
        // Offered load above the node's admission rate steals cycles
        // from block production (signature checks, prevalidation, pool
        // churn); contract calls cost `invoke_weight` transfers each.
        let sec = now.second_bucket() as usize;
        let weight = if is_invoke_run {
            self.params.invoke_weight
        } else {
            1.0
        };
        let arrivals = self.arrival_per_sec.get(sec).copied().unwrap_or(0) as f64 * weight;
        let overload = (arrivals / self.params.admission_rate - 1.0).max(0.0);
        let mult = 1.0 / (1.0 + self.params.overload_degradation * overload * overload);
        ((base as f64 * mult) as usize).max(1)
    }

    /// Egress serialization time of broadcasting `bytes` to `peers`.
    fn egress_delay(&self, bytes: u64, peers: usize) -> SimDuration {
        let bits = bytes as f64 * 8.0 * peers as f64;
        let d = SimDuration::from_secs_f64(bits / (self.params.egress_mbps * 1e6));
        diablo_telemetry::record_duration!("net.egress_us", d);
        diablo_telemetry::counter!("net.bytes.block_egress", bytes * peers as u64);
        d
    }

    /// Scales a consensus delay by the injected network slowdown and
    /// the current round's retransmission stretch.
    fn impaired(&self, d: SimDuration, now: SimTime) -> SimDuration {
        let f = self.timeline.delay_factor(now) * self.round_stretch;
        if f == 1.0 {
            d
        } else {
            SimDuration::from_secs_f64(d.as_secs_f64() * f)
        }
    }

    /// Evicts expired transactions (Solana's recent-blockhash rule).
    fn evict_expired(&mut self, now: SimTime) {
        if let Some(expiry) = self.params.blockhash_expiry {
            let evicted = self.pool.evict_where(|tx| now.since(tx.submitted) > expiry);
            for id in evicted {
                self.records[id as usize].status = TxStatus::DroppedExpired;
                self.records[id as usize].decided = Some(now);
                trace::emit(id as u64, TraceStage::DroppedExpired, now.as_micros(), 0, 0);
            }
        }
    }

    /// Finalizes blocks that have gained confirmation depth.
    fn settle_finality(&mut self) {
        let depth = self.params.confirmations as u64;
        let now_height = self.height;
        while let Some(front) = self.awaiting.front() {
            if front.height + depth > now_height {
                break;
            }
            let block = self.awaiting.pop_front().expect("front exists");
            // The decision instant is the commit of the depth-th
            // successor block plus the client's detection delay.
            let confirm_height = block.height + depth;
            let confirm_at = self.commit_times[(confirm_height - 1) as usize];
            let decided = confirm_at.max(block.committed) + self.params.detection_delay;
            for (id, ok) in block.txs {
                let rec = &mut self.records[id as usize];
                rec.decided = Some(decided);
                rec.status = if ok {
                    TxStatus::Committed
                } else {
                    TxStatus::Failed
                };
                trace::emit(
                    id as u64,
                    TraceStage::Finalized,
                    decided.as_micros(),
                    ok as u64,
                    0,
                );
            }
        }
    }

    /// Produces one block (or a failed round) and returns the delay
    /// until the next proposal.
    fn propose(&mut self, now: SimTime) -> SimDuration {
        self.rounds += 1;
        self.evict_expired(now);
        let n = self.qmodel.node_count();
        let leader = self.proposer % n;
        self.proposer = (self.proposer + 1) % n;

        // Injected faults: quorum loss, partitions, crashed leaders and
        // lost messages can consume the round before consensus starts.
        if !self.timeline.is_empty() {
            if let Some(wasted) = self.fault_round(now, leader, n) {
                return wasted;
            }
        }

        match self.params.consensus {
            ConsensusKind::HotStuff {
                min_round,
                pacemaker_base,
                pacemaker_cap,
            } => {
                let bytes = self.expected_block_bytes(now);
                let phase_base = self.impaired(
                    self.qmodel.linear_phase(leader, bytes)
                        + self.egress_delay(bytes, n.saturating_sub(1)),
                    now,
                );
                let jitter = 1.0 + 0.1 * self.rng.exponential(1.0);
                let phase = SimDuration::from_secs_f64(phase_base.as_secs_f64() * jitter);
                if phase > self.pacemaker {
                    // View change: the round is wasted; timeouts back off
                    // exponentially (HotStuff pacemaker).
                    diablo_telemetry::counter!("consensus.hotstuff.view_changes");
                    let wasted = self.pacemaker;
                    self.pacemaker = (self.pacemaker * 2).min(pacemaker_cap);
                    return wasted.max(min_round);
                }
                self.pacemaker = pacemaker_base;
                diablo_telemetry::record_duration!("consensus.hotstuff.phase_us", phase);
                diablo_telemetry::record_duration!("consensus.hotstuff.round_us", phase * 3);
                let commit = now + phase * 3; // three-chain commit
                // HotStuff's fitted round model absorbs verification
                // and execution; no explicit execution share.
                self.commit_block(now, commit, SimDuration::ZERO);
                phase.max(min_round)
            }
            ConsensusKind::Ibft {
                min_period,
                scan_per_tx,
            } => {
                // Pool maintenance is superlinear in the backlog (geth
                // reheaps and re-sorts the pending set); an unbounded
                // queue therefore strangles block production (§6.3).
                let backlog = self.pool.len() as u64;
                let assembly = scan_per_tx * backlog * (1 + backlog / 30_000);
                let bytes = self.expected_block_bytes(now);
                let commit_lat = self.impaired(
                    self.qmodel.ibft_commit(leader, bytes)
                        + self.egress_delay(bytes, n.saturating_sub(1)),
                    now,
                );
                let jitter = 1.0 + 0.1 * self.rng.exponential(1.0);
                let exec = self.exec_delay_estimate(now);
                let total = SimDuration::from_secs_f64(
                    (assembly + commit_lat + exec).as_secs_f64() * jitter,
                );
                diablo_telemetry::record_duration!("consensus.ibft.assembly_us", assembly);
                diablo_telemetry::record_duration!("consensus.ibft.commit_us", commit_lat);
                diablo_telemetry::record_duration!("consensus.ibft.round_us", total);
                let commit = now + total;
                self.commit_block(now, commit, exec);
                // IBFT does not pipeline: the next proposal follows the
                // previous commit.
                total.max(min_period)
            }
            ConsensusKind::Clique { period } => {
                let bytes = self.expected_block_bytes(now);
                let broadcast = self.impaired(
                    self.qmodel.broadcast_all(leader, bytes)
                        + self.egress_delay(bytes, n.saturating_sub(1)),
                    now,
                );
                let exec = self.exec_delay_estimate(now);
                diablo_telemetry::record_duration!("consensus.clique.broadcast_us", broadcast);
                diablo_telemetry::record_duration!("consensus.clique.round_us", broadcast + exec);
                let commit = now + broadcast + exec;
                self.commit_block(now, commit, exec);
                period
            }
            ConsensusKind::AlgorandBa {
                round_base,
                fanout,
                gossip_budget,
            } => {
                let bytes = self.expected_block_bytes(now);
                let gossip_block = self.impaired(
                    self.qmodel.gossip_all(leader, fanout, bytes)
                        + self.egress_delay(bytes, fanout),
                    now,
                );
                let gossip_votes = self.impaired(self.qmodel.gossip_all(leader, fanout, 512), now);
                // The protocol's fixed λ timeouts already budget for
                // propagation; only the excess lengthens the round.
                let gossip_excess = (gossip_block + gossip_votes).saturating_sub(gossip_budget);
                let jitter = 1.0 + 0.15 * self.rng.exponential(1.0);
                let round =
                    SimDuration::from_secs_f64((round_base + gossip_excess).as_secs_f64() * jitter);
                diablo_telemetry::record_duration!(
                    "consensus.ba_star.gossip_us",
                    gossip_block + gossip_votes
                );
                diablo_telemetry::record_duration!("consensus.ba_star.round_us", round);
                let commit = now + round;
                // BA★'s fixed λ timeouts budget verification and
                // execution inside the fitted round; no explicit share.
                self.commit_block(now, commit, SimDuration::ZERO);
                round
            }
            ConsensusKind::AvalancheSnow {
                sample_rounds,
                period_loaded,
                period_idle,
            } => {
                let bytes = self.expected_block_bytes(now);
                let per_round = self.qmodel.median_delay_from(leader).max(0.0005);
                let sampling = self.impaired(
                    SimDuration::from_secs_f64(sample_rounds as f64 * per_round)
                        + self.egress_delay(bytes, 8),
                    now,
                );
                let exec = self.exec_delay_estimate(now);
                diablo_telemetry::record_duration!("consensus.snow.sampling_us", sampling);
                diablo_telemetry::record_duration!("consensus.snow.round_us", sampling + exec);
                let commit = now + sampling + exec;
                self.commit_block(now, commit, exec);
                if self.pool.len() >= self.params.block_tx_limit {
                    period_loaded
                } else {
                    period_idle
                }
            }
            ConsensusKind::LeaderlessDbft {
                min_period,
                per_proposer,
            } => {
                // Every live node broadcasts its own proposal — each
                // pays egress only for its own share, so the superblock
                // bandwidth scales with the network instead of a leader.
                let share_bytes = (per_proposer as u64 * self.wire_estimate as u64)
                    .min(self.params.block_bytes_limit);
                let commit_lat = self.impaired(
                    self.qmodel.ibft_commit(leader, share_bytes)
                        + self.egress_delay(share_bytes, n.saturating_sub(1)),
                    now,
                );
                let jitter = 1.0 + 0.1 * self.rng.exponential(1.0);
                let exec = self.exec_delay_estimate(now);
                let total = SimDuration::from_secs_f64((commit_lat + exec).as_secs_f64() * jitter);
                diablo_telemetry::record_duration!("consensus.dbft.commit_us", commit_lat);
                diablo_telemetry::record_duration!("consensus.dbft.round_us", total);
                let commit = now + total;
                self.commit_block(now, commit, exec);
                total.max(min_period)
            }
            ConsensusKind::TowerBft { slot, skip_rate } => {
                if self.rng.chance(skip_rate) {
                    // Skipped slot: absent or lagging leader — the chain
                    // still advances one (empty) slot.
                    diablo_telemetry::counter!("consensus.tower_bft.skipped_slots");
                    self.commit_empty(now + slot);
                    return slot;
                }
                let exec = self.exec_delay_estimate(now);
                diablo_telemetry::record_duration!("consensus.tower_bft.round_us", slot + exec);
                let commit = now + slot + exec;
                self.commit_block(now, commit, exec);
                slot
            }
        }
    }

    /// Checks the fault timeline before a consensus round: returns the
    /// length of a consumed round (stall probe, wasted view change)
    /// when a fault prevents this proposal, `None` when the round may
    /// proceed. Sets `round_stretch` for retransmission delays in the
    /// proceeding case.
    fn fault_round(&mut self, now: SimTime, leader: usize, n: usize) -> Option<SimDuration> {
        self.round_stretch = 1.0;
        let f = (n.saturating_sub(1)) / 3;
        let quorum = 2 * f + 1;
        let needs_quorum = matches!(
            self.params.consensus,
            ConsensusKind::Ibft { .. }
                | ConsensusKind::HotStuff { .. }
                | ConsensusKind::AlgorandBa { .. }
                | ConsensusKind::LeaderlessDbft { .. }
        );
        // More than f nodes down: a chain needing a quorum of 2f+1
        // cannot commit until enough nodes recover and catch up.
        if needs_quorum && self.timeline.crashed_count(now) > f {
            diablo_telemetry::counter!("consensus.stalls.no_quorum");
            return Some(SimDuration::from_millis(1_000));
        }
        // Partitions: only the largest component keeps committing, and
        // only if it still holds whatever the protocol needs.
        if let Some(p) = self.timeline.partition_at(now) {
            let leader_component = p.component.get(leader).copied().unwrap_or(0);
            let committing = p.committing;
            let live = p.committing_size();
            if leader_component != committing {
                // The proposer is cut off from the majority side: its
                // round times out like a crashed leader's.
                diablo_telemetry::counter!("consensus.rounds.leader_partitioned");
                return Some(self.wasted_round(now));
            }
            match self.params.consensus {
                // Deterministic BFT: the majority side still needs a
                // 2f+1 quorum (counted over the full node set).
                ConsensusKind::Ibft { .. }
                | ConsensusKind::HotStuff { .. }
                | ConsensusKind::LeaderlessDbft { .. }
                | ConsensusKind::TowerBft { .. }
                    if live < quorum =>
                {
                    diablo_telemetry::counter!("consensus.stalls.partition");
                    return Some(SimDuration::from_millis(1_000));
                }
                // Clique PoA: each signer may only sign every
                // floor(n/2)+1 blocks, so a half-or-smaller component
                // cannot extend the chain.
                ConsensusKind::Clique { .. } if live * 2 <= n => {
                    diablo_telemetry::counter!("consensus.stalls.partition");
                    return Some(SimDuration::from_millis(1_000));
                }
                // BA★ sortition: below half the stake the protocol
                // stalls; above it, rounds whose selected proposers
                // fall in a minority component fail probabilistically
                // and gossip slows with the missing relays.
                ConsensusKind::AlgorandBa { .. } => {
                    if live * 2 <= n {
                        diablo_telemetry::counter!("consensus.stalls.partition");
                        return Some(SimDuration::from_millis(1_000));
                    }
                    let minority = 1.0 - live as f64 / n as f64;
                    if self.rng.chance(minority) {
                        diablo_telemetry::counter!("consensus.rounds.partition_degraded");
                        return Some(self.wasted_round(now));
                    }
                    self.round_stretch = n as f64 / live as f64;
                }
                // Snow sampling: queries into the unreachable component
                // time out, so confidence builds more slowly; sampled
                // rounds occasionally fail outright.
                ConsensusKind::AvalancheSnow { .. } => {
                    let minority = 1.0 - live as f64 / n as f64;
                    if self.rng.chance(minority) {
                        diablo_telemetry::counter!("consensus.rounds.partition_degraded");
                        return Some(self.wasted_round(now));
                    }
                    let stretch = n as f64 / live as f64;
                    self.round_stretch = stretch * stretch;
                }
                _ => {}
            }
        }
        // A crashed (or still catching-up) leader wastes its round on a
        // timeout: view change, skipped slot, failed sortition round.
        if self.timeline.is_crashed(leader, now) {
            diablo_telemetry::counter!("consensus.rounds.leader_crashed");
            return Some(self.wasted_round(now));
        }
        // Message loss: a lost proposal or vote consumes the round with
        // a retransmission timeout; surviving rounds stretch by the
        // expected number of retransmissions.
        let loss = self.timeline.loss_rate(now, leader);
        if loss > 0.0 {
            if self.rng.chance(loss) {
                diablo_telemetry::counter!("consensus.rounds.msg_lost");
                return Some(self.wasted_round(now));
            }
            self.round_stretch *= 1.0 / (1.0 - loss);
        }
        None
    }

    /// The cost of a round consumed by a fault, per protocol: HotStuff
    /// backs its pacemaker off, IBFT runs a view change, Clique and
    /// TowerBFT advance an empty slot, BA★ burns a sortition round.
    fn wasted_round(&mut self, now: SimTime) -> SimDuration {
        match self.params.consensus {
            ConsensusKind::HotStuff {
                pacemaker_base,
                pacemaker_cap,
                ..
            } => {
                let wasted = self.pacemaker.max(pacemaker_base);
                self.pacemaker = (self.pacemaker * 2).min(pacemaker_cap);
                wasted
            }
            ConsensusKind::Ibft { min_period, .. } => min_period * 3,
            ConsensusKind::Clique { period } => {
                self.commit_empty(now + period);
                period
            }
            ConsensusKind::AlgorandBa { round_base, .. } => round_base,
            ConsensusKind::AvalancheSnow { period_loaded, .. } => period_loaded,
            // Leaderless: a dead node merely contributes no proposal;
            // the round proceeds without it after the batch timeout.
            ConsensusKind::LeaderlessDbft { min_period, .. } => min_period,
            ConsensusKind::TowerBft { slot, .. } => {
                self.commit_empty(now + slot);
                slot
            }
        }
    }

    /// Expected payload bytes of the next block (for latency models).
    fn expected_block_bytes(&self, now: SimTime) -> u64 {
        let txs = self.block_capacity(now).min(self.pool.len());
        (txs as u64 * self.wire_estimate as u64).min(self.params.block_bytes_limit)
    }

    /// Verification-plus-execution delay of a full block: batched
    /// signature verification (the [`SigVerify`](crate::SigVerify) cost
    /// curve) followed by contract execution at the chain's rate.
    ///
    /// HotStuff and BA★ rounds absorb verification in their fitted
    /// round models and do not call this; every arm that charges
    /// execution explicitly charges verification with it.
    fn exec_delay_estimate(&self, now: SimTime) -> SimDuration {
        let txs = self.block_capacity(now).min(self.pool.len());
        // Live mode pays the real, measured verification cost; the
        // simulation charges the modeled curve. Either way the cost
        // lands in the same telemetry key, so live-diff compares them
        // phase by phase.
        let sig = match &self.live {
            Some(pool) => pool.verify_batch(txs, &self.params.sig_verify),
            None => self.params.sig_verify.batch_cost(txs),
        };
        diablo_telemetry::record_duration!("exec.sigverify_us", sig);
        let ops = txs as f64 * self.ops_estimate as f64;
        let d = SimDuration::from_secs_f64(ops / self.params.exec_ops_per_sec.max(1.0));
        diablo_telemetry::record_duration!("exec.block_delay_us", d);
        sig + d
    }

    /// Runs the store's merkleize → persist → prune stages for the
    /// block just appended at `self.height`, returning the block's
    /// roots. A no-op (`None`) when the run did not enable storage —
    /// disabled runs stay byte-identical to the pre-store execution
    /// path.
    fn persist_block(
        &mut self,
        committed: SimTime,
        bytes: u32,
        recs: &[ReceiptRec],
        changed: bool,
        touched: &[(u32, u32)],
    ) -> Option<BlockRoots> {
        let store = self.store.as_mut()?;
        // Empty blocks carry the previous state root forward, so the
        // (possibly large) contract state is only re-merkleized when
        // this block actually executed something.
        let state = if changed {
            self.engine.contract().map(|c| &c.initial_state)
        } else {
            None
        };
        Some(store.commit_block(
            self.height,
            committed.as_micros(),
            bytes,
            recs,
            state,
            touched,
        ))
    }

    /// Advances the chain by one empty block (skipped or empty slots
    /// still deepen confirmations).
    fn commit_empty(&mut self, committed: SimTime) {
        diablo_telemetry::counter!("consensus.blocks.empty");
        self.height += 1;
        self.commit_times.push(committed);
        self.blocks.push(BlockRecord {
            height: self.height,
            committed,
            txs: 0,
            bytes: 0,
        });
        self.persist_block(committed, 0, &[], false, &[]);
        self.settle_finality();
    }

    /// Fills a block from the pool, executes it and queues finality.
    ///
    /// `exec_share` is the (unjittered) verification-plus-execution
    /// estimate the proposing arm folded into `committed`; zero for the
    /// consensus models whose fitted rounds absorb execution. The
    /// consensus-phase latency histogram and the tracer's `ordered`
    /// stamp both exclude it, so the per-phase table and the per-tx
    /// waterfall attribute that time to execution exactly once.
    fn commit_block(&mut self, now: SimTime, committed: SimTime, exec_share: SimDuration) {
        let capacity = self.block_capacity(now);
        let fee = &self.fee;
        let broken = &self.broken_from;
        // Drain by arena id: records stay in the pool's slab while the
        // block is assembled and executed, and the slots are recycled
        // at the end — no owned copies on the per-block path.
        let batch = self
            .pool
            .take_batch_ids(capacity, self.params.block_bytes_limit, |tx| {
                tx.available <= now
                    && fee.is_eligible(tx.fee_cap_millis)
                    && tx.id < broken[tx.sender as usize]
            });
        let fill = batch.len() as f64 / capacity.max(1) as f64;
        self.fee.on_block(fill);
        diablo_telemetry::counter!("consensus.blocks.committed");
        diablo_telemetry::record!("consensus.block.txs", batch.len() as u64);
        diablo_telemetry::record_duration!(
            "consensus.commit_latency_us",
            committed.since(now).saturating_sub(exec_share)
        );
        if diablo_telemetry::enabled() {
            for &id in &batch {
                // Queueing delay: submission to inclusion in a block.
                let tx = self.pool.meta(id);
                diablo_telemetry::record_duration!("mempool.queue_wait_us", now.since(tx.submitted));
            }
        }
        if trace::active() {
            let round = self.rounds;
            let block = self.height + 1;
            let ordered_us = committed.as_micros().saturating_sub(exec_share.as_micros());
            for &id in &batch {
                let tid = self.pool.meta(id).id as u64;
                trace::emit(tid, TraceStage::Selected, now.as_micros(), round, 0);
                trace::emit(tid, TraceStage::Ordered, ordered_us, round, block);
            }
        }
        self.height += 1;
        self.commit_times.push(committed);
        let block_bytes: u32 = batch.iter().map(|&id| self.pool.meta(id).wire_bytes).sum();
        self.blocks.push(BlockRecord {
            height: self.height,
            committed,
            txs: batch.len() as u32,
            bytes: block_bytes,
        });
        if !batch.is_empty() {
            // The whole batch goes through the engine at once so a
            // parallel-configured engine can schedule its conflict-free
            // transactions across workers; costs come back in canonical
            // order either way.
            let payloads: Vec<Payload> = batch.iter().map(|&id| self.pool.meta(id).payload).collect();
            let costs = self.engine.execute_block(&payloads);
            if trace::active() {
                // The mode code and per-transaction execution counts are
                // the executor-dependent annotations: they live in the
                // trace set (and on the wire) but never in the Chrome
                // export, which must stay byte-identical across modes.
                let mode = self.engine.concurrency().code();
                let counts = self.engine.last_exec_counts();
                for (&id, &count) in batch.iter().zip(counts) {
                    let tid = self.pool.meta(id).id as u64;
                    trace::emit(tid, TraceStage::Executed, committed.as_micros(), mode, count as u64);
                }
            }
            if self.store.is_some() {
                // Receipts in block order; the touched-accounts delta
                // aggregated and sorted by dense sender id.
                let recs: Vec<ReceiptRec> = batch
                    .iter()
                    .zip(&costs)
                    .map(|(&id, cost)| ReceiptRec {
                        id: self.pool.meta(id).sender,
                        ok: cost.ok,
                        gas: cost.gas,
                    })
                    .collect();
                let mut touched: Vec<(u32, u32)> = Vec::with_capacity(recs.len());
                let mut senders: Vec<u32> = recs.iter().map(|r| r.id).collect();
                senders.sort_unstable();
                for sender in senders {
                    match touched.last_mut() {
                        Some((id, n)) if *id == sender => *n += 1,
                        _ => touched.push((sender, 1)),
                    }
                }
                let roots = self.persist_block(committed, block_bytes, &recs, true, &touched);
                if let Some(roots) = roots {
                    if trace::active() {
                        for &id in &batch {
                            let tid = self.pool.meta(id).id as u64;
                            trace::emit(
                                tid,
                                TraceStage::Persisted,
                                committed.as_micros(),
                                roots.state_root.0[0],
                                self.height,
                            );
                        }
                    }
                }
            }
            let txs = batch
                .iter()
                .zip(&costs)
                .map(|(&id, cost)| (self.pool.meta(id).id, cost.ok))
                .collect();
            self.awaiting.push_back(PendingFinality {
                height: self.height,
                committed,
                txs,
            });
        } else {
            self.persist_block(committed, 0, &[], false, &[]);
        }
        for id in batch {
            self.pool.release(id);
        }
        self.settle_finality();
    }
}

impl ChainSim {
    /// The chain this world simulates.
    pub fn chain(&self) -> Chain {
        self.chain
    }

    /// End of the submission phase.
    pub fn workload_end(&self) -> SimTime {
        self.workload_end
    }
}

impl World for ChainSim {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<Ev>) {
        // Keep the telemetry clock on virtual time: spans and duration
        // records made anywhere below observe the event's instant.
        diablo_telemetry::clock::set_sim_now(now);
        match event {
            Ev::Tick(k) => self.submit_tick(now, k),
            Ev::Propose => {
                let next = self.propose(now);
                let next_at = now + next;
                if next_at <= self.deadline {
                    sched.at(next_at, Ev::Propose);
                }
                // Blocks past the deadline are not produced; anything
                // still awaiting confirmation depth remains Pending, as
                // it would in a real run cut off at the deadline.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_workloads::traces;

    fn quick(chain: Chain, tps: f64, secs: u64) -> RunResult {
        Experiment::new(chain, DeploymentKind::Testnet, traces::constant(tps, secs))
            .with_grace(30)
            .run()
    }

    #[test]
    fn quorum_commits_a_light_load() {
        let r = quick(Chain::Quorum, 100.0, 30);
        assert_eq!(r.submitted(), 3_000);
        assert!(r.commit_ratio() > 0.95, "{}", r.summary());
        assert!(r.avg_latency_secs() < 5.0, "{}", r.summary());
    }

    #[test]
    fn diem_is_fast_locally() {
        let r = quick(Chain::Diem, 500.0, 30);
        assert!(r.commit_ratio() > 0.95, "{}", r.summary());
        assert!(r.avg_latency_secs() < 2.0, "{}", r.summary());
    }

    #[test]
    fn solana_latency_is_dominated_by_confirmations() {
        let r = quick(Chain::Solana, 100.0, 30);
        assert!(r.commit_ratio() > 0.9, "{}", r.summary());
        // 30 confirmations × 400 ms ⇒ at least 12 s.
        assert!(r.avg_latency_secs() >= 12.0, "{}", r.summary());
    }

    #[test]
    fn ethereum_is_slow_and_throttled() {
        let r = quick(Chain::Ethereum, 1000.0, 60);
        // 8M gas / 21k per transfer / 5 s period ≈ 76 TPS ceiling.
        assert!(r.avg_throughput() < 200.0, "{}", r.summary());
    }

    #[test]
    fn avalanche_throttles_throughput() {
        let r = quick(Chain::Avalanche, 1000.0, 60);
        assert!(r.avg_throughput() < 400.0, "{}", r.summary());
        assert!(r.committed() > 0, "{}", r.summary());
    }

    #[test]
    fn same_seed_same_result() {
        let a = quick(Chain::Algorand, 200.0, 20);
        let b = quick(Chain::Algorand, 200.0, 20);
        assert_eq!(a.committed(), b.committed());
        assert_eq!(a.avg_latency_secs(), b.avg_latency_secs());
    }

    #[test]
    fn different_seed_different_jitter() {
        let w = traces::constant(200.0, 20);
        let a = Experiment::new(Chain::Algorand, DeploymentKind::Testnet, w.clone())
            .with_seed(1)
            .run();
        let b = Experiment::new(Chain::Algorand, DeploymentKind::Testnet, w)
            .with_seed(2)
            .run();
        // Both commit, but the latency profile differs with the jitter.
        assert!(a.committed() > 0 && b.committed() > 0);
        assert_ne!(a.avg_latency_secs(), b.avg_latency_secs());
    }

    #[test]
    fn mobility_unruns_on_hard_budget_chains() {
        for chain in [Chain::Algorand, Chain::Diem, Chain::Solana] {
            let r = Experiment::new(chain, DeploymentKind::Testnet, traces::constant(10.0, 5))
                .with_dapp(DApp::Mobility)
                .run();
            assert!(!r.able(), "{chain} must be unable to run mobility");
            assert!(r
                .unable_reason
                .as_deref()
                .unwrap_or("")
                .contains("budget exceeded"));
        }
    }

    #[test]
    fn mobility_runs_on_geth_chains() {
        let r = Experiment::new(
            Chain::Quorum,
            DeploymentKind::Testnet,
            traces::constant(50.0, 20),
        )
        .with_dapp(DApp::Mobility)
        .run();
        assert!(r.able());
        assert!(r.committed() > 0, "{}", r.summary());
    }

    #[test]
    fn youtube_is_unsupported_on_algorand() {
        let r = Experiment::new(
            Chain::Algorand,
            DeploymentKind::Testnet,
            traces::constant(10.0, 5),
        )
        .with_dapp(DApp::VideoSharing)
        .run();
        assert!(!r.able());
        assert!(r.unable_reason.as_deref().unwrap_or("").contains("128"));
    }

    #[test]
    fn exact_mode_counts_match_contract_state() {
        let r = Experiment::new(
            Chain::Diem,
            DeploymentKind::Testnet,
            traces::constant(50.0, 10),
        )
        .with_dapp(DApp::WebService)
        .with_exec_mode(ExecMode::Exact)
        .run();
        assert!(r.committed() > 0);
        // Committed adds all executed for real; counts are consistent.
        assert_eq!(r.submitted(), 500);
    }

    #[test]
    fn parallel_concurrency_reproduces_serial_runs() {
        // End to end: the same seeded experiment must produce identical
        // per-transaction records whether committed blocks execute
        // serially or across 4 workers.
        let run = |concurrency| {
            Experiment::new(
                Chain::Quorum,
                DeploymentKind::Testnet,
                traces::constant(80.0, 10),
            )
            .with_dapp(DApp::Exchange)
            .with_exec_mode(ExecMode::Exact)
            .with_concurrency(concurrency)
            .with_grace(30)
            .run()
        };
        let serial = run(Concurrency::Serial);
        let parallel = run(Concurrency::Parallel(4));
        assert_eq!(serial.records.len(), parallel.records.len());
        for (s, p) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(s.submitted, p.submitted);
            assert_eq!(s.decided, p.decided);
            assert_eq!(s.status, p.status);
        }
        assert_eq!(serial.blocks, parallel.blocks);
    }

    #[test]
    fn optimistic_concurrency_reproduces_serial_runs() {
        // Same end-to-end check for the optimistic executor, on the
        // gaming DApp whose dynamic footprints the static scheduler
        // cannot parallelize — here speculation really does the work.
        let run = |concurrency| {
            Experiment::new(
                Chain::Quorum,
                DeploymentKind::Testnet,
                traces::constant(80.0, 10),
            )
            .with_dapp(DApp::Gaming)
            .with_exec_mode(ExecMode::Exact)
            .with_concurrency(concurrency)
            .with_grace(30)
            .run()
        };
        let serial = run(Concurrency::Serial);
        for concurrency in [Concurrency::Optimistic(1), Concurrency::Optimistic(4)] {
            let optimistic = run(concurrency);
            assert_eq!(serial.records.len(), optimistic.records.len());
            for (s, o) in serial.records.iter().zip(&optimistic.records) {
                assert_eq!(s.submitted, o.submitted);
                assert_eq!(s.decided, o.decided);
                assert_eq!(s.status, o.status);
            }
            assert_eq!(serial.blocks, optimistic.blocks);
        }
    }
}
