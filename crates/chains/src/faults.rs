//! Fault injection.
//!
//! The paper's related-work section credits Blockbench with measuring
//! "the tolerance of faults through injected delays, crashes and message
//! corruption" (§7); Diablo itself focuses on performance. This module
//! adds that dimension to the simulated chains as a first-class
//! subsystem:
//!
//! - **crash-recovery**: a node stops participating at an instant and
//!   optionally rejoins later; a rejoined node spends a catch-up window
//!   replaying the chain before it counts as live again;
//! - **network partitions**: the deployment splits into disjoint
//!   components for an interval — deterministic BFT chains stall
//!   without a quorum, probabilistic chains degrade;
//! - **per-link message loss and submission corruption**: lost
//!   consensus messages waste rounds on retransmission timeouts,
//!   corrupted submissions are rejected by the receiving node and
//!   surface as client errors (retried per [`RetryPolicy`]);
//! - **network slowdowns**: a global delay multiplier from an instant;
//! - **Secondary faults**: a Diablo worker dies mid-benchmark; the
//!   Primary aggregates partial results instead of hanging.
//!
//! Plans are declared through [`FaultPlan::builder`] and compiled once
//! per run into a [`FaultTimeline`] whose per-tick queries are
//! `O(log faults)` instead of the old per-tick linear scans.

use diablo_sim::{SimDuration, SimTime};

/// Fraction of a node's downtime it spends catching up after recovery
/// (replaying missed blocks): a node down for 16 s is only live again
/// 2 s after its recovery instant.
const CATCHUP_SHIFT: u32 = 3; // downtime / 8

/// Client-side policy for retrying transiently rejected submissions
/// (corrupted transactions the receiving node refuses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum submission attempts, first try included (1 = never
    /// retry).
    pub attempts: u32,
    /// Backoff before the first retry; doubles on every further
    /// attempt.
    pub backoff: SimDuration,
    /// Hard deadline relative to the scheduled submission instant:
    /// attempts that would start later are abandoned and the
    /// transaction is reported rejected.
    pub timeout: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: SimDuration::from_millis(500),
            timeout: SimDuration::from_secs(10),
        }
    }
}

/// One node crash, with an optional recovery instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CrashFault {
    node: usize,
    at: SimTime,
    recover: Option<SimTime>,
}

impl CrashFault {
    /// The window the node is effectively down: recovery is delayed by
    /// the catch-up replay (a fixed fraction of the downtime).
    fn down_window(&self) -> (SimTime, SimTime) {
        match self.recover {
            None => (self.at, SimTime::MAX),
            Some(rec) => {
                let rec = rec.max(self.at);
                let catchup = SimDuration::from_micros(rec.since(self.at).as_micros() >> CATCHUP_SHIFT);
                (self.at, rec + catchup)
            }
        }
    }
}

/// One network partition: the node set splits into disjoint groups for
/// an interval.
#[derive(Debug, Clone, PartialEq)]
struct PartitionFault {
    groups: Vec<Vec<usize>>,
    from: SimTime,
    until: SimTime,
}

/// One message-loss window: consensus messages are lost with the given
/// probability, either on every link (`link: None`) or on the one link
/// between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LossFault {
    link: Option<(usize, usize)>,
    rate: f64,
    from: SimTime,
    until: SimTime,
}

/// One submission-corruption window: client submissions arrive mangled
/// (and are rejected by the node) with the given probability.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CorruptionFault {
    rate: f64,
    from: SimTime,
    until: SimTime,
}

/// A schedule of faults injected into one experiment.
///
/// Construct with [`FaultPlan::builder`]; attach to an experiment with
/// `Experiment::with_faults` or `HarnessOptions::faults`. The plan is
/// declarative — the chain simulation compiles it once per run into a
/// [`FaultTimeline`] for cheap per-tick queries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    crashes: Vec<CrashFault>,
    partitions: Vec<PartitionFault>,
    losses: Vec<LossFault>,
    corruptions: Vec<CorruptionFault>,
    slowdown: Option<(SimTime, f64)>,
    secondary_kills: Vec<(usize, SimTime)>,
    retry: Option<RetryPolicy>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Starts building a fault plan.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::default(),
        }
    }

    /// Crashes `count` nodes (indices `0..count`) at `at`, permanently.
    #[deprecated(note = "use FaultPlan::builder().crash_many(count, at).build()")]
    pub fn crash_nodes(count: usize, at: SimTime) -> Self {
        FaultPlan::builder().crash_many(count, at).build()
    }

    /// Multiplies consensus delays by `factor` from `at` on.
    #[deprecated(note = "use FaultPlan::builder().slowdown(at, factor).build()")]
    pub fn slow_network(at: SimTime, factor: f64) -> Self {
        FaultPlan::builder().slowdown(at, factor).build()
    }

    /// Whether any fault is scheduled at all. (A non-default retry
    /// policy alone is not a fault: it only matters once something
    /// rejects a submission.)
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.partitions.is_empty()
            && self.losses.is_empty()
            && self.corruptions.is_empty()
            && self.slowdown.is_none()
            && self.secondary_kills.is_empty()
    }

    /// The client retry policy (default when never set).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry.unwrap_or_default()
    }

    /// Scheduled Secondary deaths: `(secondary index, instant)`.
    pub fn secondary_kills(&self) -> &[(usize, SimTime)] {
        &self.secondary_kills
    }

    /// When (if ever) the given Secondary dies.
    pub fn kill_of_secondary(&self, secondary: usize) -> Option<SimTime> {
        self.secondary_kills
            .iter()
            .filter(|&&(s, _)| s == secondary)
            .map(|&(_, at)| at)
            .min()
    }

    /// Unions two plans: all fault events of both; `other`'s slowdown
    /// and retry policy win where both set one.
    pub fn merged(mut self, other: FaultPlan) -> FaultPlan {
        self.crashes.extend(other.crashes);
        self.partitions.extend(other.partitions);
        self.losses.extend(other.losses);
        self.corruptions.extend(other.corruptions);
        self.secondary_kills.extend(other.secondary_kills);
        if other.slowdown.is_some() {
            self.slowdown = other.slowdown;
        }
        if other.retry.is_some() {
            self.retry = other.retry;
        }
        self
    }

    /// The union of all node/network fault windows up to `horizon`,
    /// merged and sorted — the "fault periods" of a run, used by the
    /// report to split latency into fault-period and healthy-period
    /// populations. Secondary kills and the retry policy do not open
    /// windows.
    pub fn active_windows(&self, horizon: SimTime) -> Vec<(SimTime, SimTime)> {
        let mut windows: Vec<(SimTime, SimTime)> = Vec::new();
        for c in &self.crashes {
            let (a, b) = c.down_window();
            windows.push((a, b.min(horizon)));
        }
        for p in &self.partitions {
            windows.push((p.from, p.until.min(horizon)));
        }
        for l in &self.losses {
            windows.push((l.from, l.until.min(horizon)));
        }
        for c in &self.corruptions {
            windows.push((c.from, c.until.min(horizon)));
        }
        if let Some((at, _)) = self.slowdown {
            windows.push((at, horizon));
        }
        windows.retain(|&(a, b)| a < b);
        windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
        for (a, b) in windows {
            match merged.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => merged.push((a, b)),
            }
        }
        merged
    }

    /// Compiles the plan for a deployment of `nodes` nodes into the
    /// timeline the simulation queries every tick.
    pub fn compile(&self, nodes: usize) -> FaultTimeline {
        let nodes = nodes.max(1);
        // Per-node down windows, sorted by start.
        let mut down: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); nodes];
        // Global crashed-count step function: (instant, delta).
        let mut deltas: Vec<(SimTime, i64)> = Vec::new();
        for c in &self.crashes {
            if c.node >= nodes {
                continue;
            }
            let (a, b) = c.down_window();
            down[c.node].push((a, b));
            deltas.push((a, 1));
            if b != SimTime::MAX {
                deltas.push((b, -1));
            }
        }
        for windows in &mut down {
            windows.sort();
        }
        deltas.sort();
        let mut crash_steps: Vec<(SimTime, u32)> = Vec::new();
        let mut level = 0i64;
        for (t, d) in deltas {
            level += d;
            match crash_steps.last_mut() {
                Some(last) if last.0 == t => last.1 = level.max(0) as u32,
                _ => crash_steps.push((t, level.max(0) as u32)),
            }
        }
        let partitions = self
            .partitions
            .iter()
            .map(|p| CompiledPartition::compile(p, nodes))
            .collect();
        FaultTimeline {
            down,
            crash_steps,
            partitions,
            losses: self.losses.clone(),
            corruptions: self.corruptions.clone(),
            slowdown: self.slowdown,
            empty: self.is_empty(),
        }
    }
}

/// Fluent constructor for [`FaultPlan`]s.
///
/// ```
/// use diablo_chains::FaultPlan;
/// use diablo_sim::{SimDuration, SimTime};
///
/// let plan = FaultPlan::builder()
///     .crash(0, SimTime::from_secs(10))
///     .recover(0, SimTime::from_secs(30))
///     .partition(&[0, 1, 2], &[3, 4], SimTime::from_secs(40), SimTime::from_secs(60))
///     .loss(0.05, SimTime::from_secs(5), SimTime::from_secs(15))
///     .build();
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Crashes `node` at `at` (permanently, unless a later
    /// [`FaultPlanBuilder::recover`] names the same node).
    pub fn crash(mut self, node: usize, at: SimTime) -> Self {
        self.plan.crashes.push(CrashFault {
            node,
            at,
            recover: None,
        });
        self
    }

    /// Crashes nodes `0..count` at `at`.
    pub fn crash_many(mut self, count: usize, at: SimTime) -> Self {
        for node in 0..count {
            self = self.crash(node, at);
        }
        self
    }

    /// Recovers `node` at `at`: attaches to that node's most recent
    /// still-permanent crash (no-op when the node never crashed). The
    /// node only counts as live again after a catch-up window
    /// proportional to its downtime.
    pub fn recover(mut self, node: usize, at: SimTime) -> Self {
        if let Some(c) = self
            .plan
            .crashes
            .iter_mut()
            .rev()
            .find(|c| c.node == node && c.recover.is_none())
        {
            c.recover = Some(at.max(c.at));
        }
        self
    }

    /// Recovers nodes `0..count` at `at` (pairs with
    /// [`FaultPlanBuilder::crash_many`]).
    pub fn recover_many(mut self, count: usize, at: SimTime) -> Self {
        for node in 0..count {
            self = self.recover(node, at);
        }
        self
    }

    /// Splits the network into two components for `[from, until)`.
    /// Nodes in neither slice side with group `a` (so a two-way split
    /// only needs the minority listed in `b`).
    pub fn partition(self, a: &[usize], b: &[usize], from: SimTime, until: SimTime) -> Self {
        self.partition_groups(&[a, b], from, until)
    }

    /// Splits the network into arbitrarily many components for
    /// `[from, until)`; unlisted nodes join the first group.
    pub fn partition_groups(mut self, groups: &[&[usize]], from: SimTime, until: SimTime) -> Self {
        self.plan.partitions.push(PartitionFault {
            groups: groups.iter().map(|g| g.to_vec()).collect(),
            from,
            until,
        });
        self
    }

    /// Loses consensus messages on every link with probability `rate`
    /// during `[from, until)`.
    pub fn loss(mut self, rate: f64, from: SimTime, until: SimTime) -> Self {
        self.plan.losses.push(LossFault {
            link: None,
            rate: rate.clamp(0.0, MAX_LOSS),
            from,
            until,
        });
        self
    }

    /// Loses messages on the single link between nodes `a` and `b`
    /// with probability `rate` during `[from, until)`.
    pub fn link_loss(
        mut self,
        a: usize,
        b: usize,
        rate: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.plan.losses.push(LossFault {
            link: Some((a.min(b), a.max(b))),
            rate: rate.clamp(0.0, MAX_LOSS),
            from,
            until,
        });
        self
    }

    /// Corrupts client submissions with probability `rate` during
    /// `[from, until)`: the receiving node rejects them and the client
    /// retries per the plan's [`RetryPolicy`].
    pub fn corrupt(mut self, rate: f64, from: SimTime, until: SimTime) -> Self {
        self.plan.corruptions.push(CorruptionFault {
            rate: rate.clamp(0.0, MAX_LOSS),
            from,
            until,
        });
        self
    }

    /// Multiplies all consensus delays by `factor` from `at` on.
    pub fn slowdown(mut self, at: SimTime, factor: f64) -> Self {
        self.plan.slowdown = Some((at, factor));
        self
    }

    /// Kills Diablo Secondary `secondary` at `at`: transactions it
    /// would have submitted from that instant on are never sent, and
    /// the distributed Primary aggregates partial results.
    pub fn kill_secondary(mut self, secondary: usize, at: SimTime) -> Self {
        self.plan.secondary_kills.push((secondary, at));
        self
    }

    /// Sets the client retry policy for rejected submissions.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.plan.retry = Some(policy);
        self
    }

    /// Finalizes the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// Probabilities are clamped below certainty so retransmission
/// stretches (`1 / (1 - rate)`) stay finite.
const MAX_LOSS: f64 = 0.95;

/// One compiled partition: per-node component ids plus the component
/// that keeps committing.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPartition {
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive) — the heal instant.
    pub until: SimTime,
    /// Component id of every node.
    pub component: Vec<u32>,
    /// Member count per component.
    pub sizes: Vec<u32>,
    /// The component that keeps committing: the largest one (ties go to
    /// the lowest component id, so the split is deterministic).
    pub committing: u32,
}

impl CompiledPartition {
    fn compile(p: &PartitionFault, nodes: usize) -> CompiledPartition {
        // Unlisted nodes join the first group; nodes listed twice keep
        // their first assignment.
        let groups = p.groups.len().max(1);
        let mut component = vec![u32::MAX; nodes];
        for (gi, group) in p.groups.iter().enumerate() {
            for &node in group {
                if node < nodes && component[node] == u32::MAX {
                    component[node] = gi as u32;
                }
            }
        }
        for c in component.iter_mut() {
            if *c == u32::MAX {
                *c = 0;
            }
        }
        let mut sizes = vec![0u32; groups];
        for &c in &component {
            sizes[c as usize] += 1;
        }
        let committing = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        CompiledPartition {
            from: p.from,
            until: p.until,
            component,
            sizes,
            committing,
        }
    }

    /// Number of nodes in the committing component.
    pub fn committing_size(&self) -> usize {
        self.sizes[self.committing as usize] as usize
    }
}

/// A [`FaultPlan`] compiled for one deployment: the sorted event
/// timeline the simulation queries every tick in `O(log faults)` (the
/// old API scanned the whole crash list per query).
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    /// Per-node down windows `[start, end)`, sorted by start.
    down: Vec<Vec<(SimTime, SimTime)>>,
    /// Step function: from `instant` on, `count` nodes are down (until
    /// the next step). Sorted by instant.
    crash_steps: Vec<(SimTime, u32)>,
    partitions: Vec<CompiledPartition>,
    losses: Vec<LossFault>,
    corruptions: Vec<CorruptionFault>,
    slowdown: Option<(SimTime, f64)>,
    empty: bool,
}

impl FaultTimeline {
    /// A timeline with no faults (any node count).
    pub fn empty() -> Self {
        FaultPlan::none().compile(1)
    }

    /// Whether the source plan scheduled any fault.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Whether `node` is down (crashed, or catching up after recovery)
    /// at `now`. Binary search over the node's down windows.
    pub fn is_crashed(&self, node: usize, now: SimTime) -> bool {
        let Some(windows) = self.down.get(node) else {
            return false;
        };
        let idx = windows.partition_point(|&(start, _)| start <= now);
        idx > 0 && now < windows[idx - 1].1
    }

    /// Number of down nodes at `now`. Binary search over the step
    /// function.
    pub fn crashed_count(&self, now: SimTime) -> usize {
        let idx = self.crash_steps.partition_point(|&(t, _)| t <= now);
        if idx == 0 {
            0
        } else {
            self.crash_steps[idx - 1].1 as usize
        }
    }

    /// The partition active at `now`, if any (first declared wins when
    /// windows overlap).
    pub fn partition_at(&self, now: SimTime) -> Option<&CompiledPartition> {
        self.partitions
            .iter()
            .find(|p| p.from <= now && now < p.until)
    }

    /// Combined message-loss probability on `node`'s links at `now`:
    /// independent loss windows compose as `1 - Π(1 - rate)`.
    pub fn loss_rate(&self, now: SimTime, node: usize) -> f64 {
        let mut keep = 1.0;
        for l in &self.losses {
            if l.from <= now && now < l.until {
                let applies = match l.link {
                    None => true,
                    Some((a, b)) => a == node || b == node,
                };
                if applies {
                    keep *= 1.0 - l.rate;
                }
            }
        }
        (1.0 - keep).clamp(0.0, MAX_LOSS)
    }

    /// Combined submission-corruption probability at `now`.
    pub fn corruption_rate(&self, now: SimTime) -> f64 {
        let mut keep = 1.0;
        for c in &self.corruptions {
            if c.from <= now && now < c.until {
                keep *= 1.0 - c.rate;
            }
        }
        (1.0 - keep).clamp(0.0, MAX_LOSS)
    }

    /// The network delay multiplier at `now` (1.0 when unimpaired).
    pub fn delay_factor(&self, now: SimTime) -> f64 {
        match self.slowdown {
            Some((at, factor)) if now >= at => factor.max(1.0),
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn crashes_activate_at_their_instant() {
        let plan = FaultPlan::builder().crash_many(3, t(10)).build();
        let tl = plan.compile(10);
        assert!(!tl.is_crashed(0, t(9)));
        assert!(tl.is_crashed(0, t(10)));
        assert!(tl.is_crashed(2, t(11)));
        assert!(!tl.is_crashed(3, t(11)));
        assert_eq!(tl.crashed_count(t(5)), 0);
        assert_eq!(tl.crashed_count(t(20)), 3);
    }

    #[test]
    fn recovery_ends_the_downtime_after_catchup() {
        // Down 10..26 (16 s), catch-up 2 s: live again at 28.
        let plan = FaultPlan::builder()
            .crash(4, t(10))
            .recover(4, t(26))
            .build();
        let tl = plan.compile(10);
        assert!(tl.is_crashed(4, t(10)));
        assert!(tl.is_crashed(4, t(27)), "catching up still counts as down");
        assert!(!tl.is_crashed(4, t(28)));
        assert_eq!(tl.crashed_count(t(15)), 1);
        assert_eq!(tl.crashed_count(t(28)), 0);
    }

    #[test]
    fn recover_without_crash_is_a_no_op() {
        let plan = FaultPlan::builder().recover(2, t(5)).build();
        assert!(plan.is_empty());
    }

    #[test]
    fn crash_count_steps_handle_staggered_windows() {
        let plan = FaultPlan::builder()
            .crash(0, t(10))
            .recover(0, t(18)) // down 10..19 (1 s catch-up)
            .crash(1, t(12))
            .crash(2, t(15))
            .recover(2, t(15)) // zero downtime: instant recovery
            .build();
        let tl = plan.compile(5);
        assert_eq!(tl.crashed_count(t(11)), 1);
        assert_eq!(tl.crashed_count(t(13)), 2);
        assert_eq!(tl.crashed_count(t(20)), 1, "node 0 recovered, node 1 not");
        assert!(tl.is_crashed(1, t(100)));
    }

    #[test]
    fn partitions_compile_components() {
        let plan = FaultPlan::builder()
            .partition(&[0, 1, 2], &[3, 4], t(30), t(60))
            .build();
        let tl = plan.compile(7); // nodes 5, 6 unlisted: join group 0
        assert!(tl.partition_at(t(29)).is_none());
        assert!(tl.partition_at(t(60)).is_none());
        let p = tl.partition_at(t(30)).expect("active");
        assert_eq!(p.component, vec![0, 0, 0, 1, 1, 0, 0]);
        assert_eq!(p.sizes, vec![5, 2]);
        assert_eq!(p.committing, 0);
        assert_eq!(p.committing_size(), 5);
    }

    #[test]
    fn partition_ties_go_to_the_lowest_component() {
        let plan = FaultPlan::builder()
            .partition(&[0, 1], &[2, 3], t(0), t(10))
            .build();
        let p = plan.compile(4);
        assert_eq!(p.partition_at(t(5)).unwrap().committing, 0);
    }

    #[test]
    fn loss_rates_compose_and_respect_links() {
        let plan = FaultPlan::builder()
            .loss(0.5, t(0), t(100))
            .link_loss(2, 7, 0.5, t(0), t(100))
            .build();
        let tl = plan.compile(10);
        assert!((tl.loss_rate(t(1), 0) - 0.5).abs() < 1e-12);
        assert!((tl.loss_rate(t(1), 2) - 0.75).abs() < 1e-12);
        assert!((tl.loss_rate(t(1), 7) - 0.75).abs() < 1e-12);
        assert_eq!(tl.loss_rate(t(200), 2), 0.0);
    }

    #[test]
    fn corruption_rates_window() {
        let plan = FaultPlan::builder().corrupt(0.25, t(5), t(10)).build();
        let tl = plan.compile(4);
        assert_eq!(tl.corruption_rate(t(4)), 0.0);
        assert!((tl.corruption_rate(t(5)) - 0.25).abs() < 1e-12);
        assert_eq!(tl.corruption_rate(t(10)), 0.0);
    }

    #[test]
    fn slowdown_applies_from_its_instant() {
        let plan = FaultPlan::builder().slowdown(t(30), 4.0).build();
        let tl = plan.compile(4);
        assert_eq!(tl.delay_factor(t(29)), 1.0);
        assert_eq!(tl.delay_factor(t(30)), 4.0);
    }

    #[test]
    fn slowdown_never_speeds_up() {
        let plan = FaultPlan::builder().slowdown(SimTime::ZERO, 0.1).build();
        assert_eq!(plan.compile(4).delay_factor(t(1)), 1.0);
    }

    #[test]
    fn emptiness() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::builder().build().is_empty());
        assert!(
            FaultPlan::builder()
                .retry(RetryPolicy::default())
                .build()
                .is_empty(),
            "a retry policy alone is not a fault"
        );
        assert!(!FaultPlan::builder().crash(0, SimTime::ZERO).build().is_empty());
        assert!(!FaultPlan::builder().slowdown(SimTime::ZERO, 2.0).build().is_empty());
        assert!(!FaultPlan::builder().kill_secondary(0, t(3)).build().is_empty());
        assert!(FaultTimeline::empty().is_empty());
    }

    #[test]
    fn deprecated_constructors_match_the_builder() {
        #[allow(deprecated)]
        let old = FaultPlan::crash_nodes(3, t(10));
        assert_eq!(old, FaultPlan::builder().crash_many(3, t(10)).build());
        #[allow(deprecated)]
        let old = FaultPlan::slow_network(t(30), 4.0);
        assert_eq!(old, FaultPlan::builder().slowdown(t(30), 4.0).build());
    }

    #[test]
    fn secondary_kills_are_recorded() {
        let plan = FaultPlan::builder()
            .kill_secondary(1, t(20))
            .kill_secondary(1, t(10))
            .build();
        assert_eq!(plan.kill_of_secondary(1), Some(t(10)), "earliest death wins");
        assert_eq!(plan.kill_of_secondary(0), None);
        assert_eq!(plan.secondary_kills().len(), 2);
    }

    #[test]
    fn merged_unions_events() {
        let a = FaultPlan::builder().crash(0, t(10)).build();
        let b = FaultPlan::builder()
            .loss(0.1, t(0), t(5))
            .slowdown(t(7), 2.0)
            .build();
        let m = a.merged(b);
        let tl = m.compile(4);
        assert!(tl.is_crashed(0, t(11)));
        assert!(tl.loss_rate(t(1), 0) > 0.0);
        assert_eq!(tl.delay_factor(t(8)), 2.0);
    }

    #[test]
    fn active_windows_merge_overlaps() {
        let plan = FaultPlan::builder()
            .crash(0, t(10))
            .recover(0, t(18)) // 10..19 with catch-up
            .partition(&[0], &[1], t(15), t(30))
            .loss(0.1, t(50), t(55))
            .build();
        let windows = plan.active_windows(t(100));
        assert_eq!(windows, vec![(t(10), t(30)), (t(50), t(55))]);
        // Horizon clips; a permanent crash runs to the horizon.
        let forever = FaultPlan::builder().crash(0, t(40)).build();
        assert_eq!(forever.active_windows(t(60)), vec![(t(40), t(60))]);
        assert!(FaultPlan::none().active_windows(t(60)).is_empty());
    }

    #[test]
    fn retry_policy_defaults_and_overrides() {
        assert_eq!(FaultPlan::none().retry_policy(), RetryPolicy::default());
        let policy = RetryPolicy {
            attempts: 5,
            backoff: SimDuration::from_millis(100),
            timeout: SimDuration::from_secs(2),
        };
        let plan = FaultPlan::builder().retry(policy).build();
        assert_eq!(plan.retry_policy(), policy);
    }
}
