//! Fault injection.
//!
//! The paper's related-work section credits Blockbench with measuring
//! "the tolerance of faults through injected delays, crashes and message
//! corruption" (§7); Diablo itself focuses on performance. This module
//! adds that dimension to the simulated chains: node crashes at chosen
//! instants and network slowdowns, with the protocol-appropriate
//! consequences — crashed leaders waste their rounds, and deterministic
//! BFT chains stop committing entirely once more than `f` nodes are
//! down, while the probabilistic chains merely slow down.

use diablo_sim::SimTime;

/// A schedule of faults injected into one experiment.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// `(node index, crash instant)` — the node stops participating at
    /// that instant and never recovers.
    pub crashes: Vec<(usize, SimTime)>,
    /// From this instant, all consensus message delays are multiplied
    /// by the factor (an injected WAN degradation).
    pub slowdown: Option<(SimTime, f64)>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Crashes `count` nodes (indices `0..count`) at `at`.
    pub fn crash_nodes(count: usize, at: SimTime) -> Self {
        FaultPlan {
            crashes: (0..count).map(|i| (i, at)).collect(),
            slowdown: None,
        }
    }

    /// Multiplies consensus delays by `factor` from `at` on.
    pub fn slow_network(at: SimTime, factor: f64) -> Self {
        FaultPlan {
            crashes: Vec::new(),
            slowdown: Some((at, factor)),
        }
    }

    /// Whether `node` is crashed at `now`.
    pub fn is_crashed(&self, node: usize, now: SimTime) -> bool {
        self.crashes.iter().any(|&(n, at)| n == node && now >= at)
    }

    /// Number of crashed nodes at `now`.
    pub fn crashed_count(&self, now: SimTime) -> usize {
        self.crashes.iter().filter(|&&(_, at)| now >= at).count()
    }

    /// The network delay multiplier at `now` (1.0 when unimpaired).
    pub fn delay_factor(&self, now: SimTime) -> f64 {
        match self.slowdown {
            Some((at, factor)) if now >= at => factor.max(1.0),
            _ => 1.0,
        }
    }

    /// Whether any fault is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.slowdown.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashes_activate_at_their_instant() {
        let plan = FaultPlan::crash_nodes(3, SimTime::from_secs(10));
        assert!(!plan.is_crashed(0, SimTime::from_secs(9)));
        assert!(plan.is_crashed(0, SimTime::from_secs(10)));
        assert!(plan.is_crashed(2, SimTime::from_secs(11)));
        assert!(!plan.is_crashed(3, SimTime::from_secs(11)));
        assert_eq!(plan.crashed_count(SimTime::from_secs(5)), 0);
        assert_eq!(plan.crashed_count(SimTime::from_secs(20)), 3);
    }

    #[test]
    fn slowdown_applies_from_its_instant() {
        let plan = FaultPlan::slow_network(SimTime::from_secs(30), 4.0);
        assert_eq!(plan.delay_factor(SimTime::from_secs(29)), 1.0);
        assert_eq!(plan.delay_factor(SimTime::from_secs(30)), 4.0);
    }

    #[test]
    fn slowdown_never_speeds_up() {
        let plan = FaultPlan::slow_network(SimTime::ZERO, 0.1);
        assert_eq!(plan.delay_factor(SimTime::from_secs(1)), 1.0);
    }

    #[test]
    fn emptiness() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::crash_nodes(1, SimTime::ZERO).is_empty());
        assert!(!FaultPlan::slow_network(SimTime::ZERO, 2.0).is_empty());
    }
}
