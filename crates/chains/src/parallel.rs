//! Deterministic parallel block execution.
//!
//! At commit time a block is a batch of transactions with a canonical
//! order, and the receipts, gas and final state of the block must not
//! depend on how the simulator chooses to execute it — determinism is
//! what makes every experiment replayable from a seed. Serial execution
//! trivially guarantees that but leaves all cores except one idle, and
//! since every committed transaction now runs through the VM, block
//! commit dominates the wall-clock cost of the paper's large
//! experiments.
//!
//! [`ParallelExecutor`] exploits the static storage footprints computed
//! at deploy time ([`diablo_vm::RwSet`], stored on the prepared
//! program): two transactions *conflict* when one's writes intersect
//! the other's reads or writes (read/read sharing is free), when both
//! store blobs, or when either footprint has a dynamic (non-constant)
//! key. The executor partitions a batch into connected components of
//! the conflict graph, assigns whole components to a scoped worker
//! pool, and executes each component **in canonical transaction order**
//! against a copy-on-write [`Overlay`] of the base state. Components
//! touch disjoint keys by construction, so the per-worker
//! [`diablo_vm::OverlayDelta`]s commute and the merged state, every receipt and
//! every rollback is bit-identical to serial execution — which
//! `tests/parallel_differential.rs` proves property-style across
//! flavors, DApps and thread counts.
//!
//! A static footprint is a function of the entry point alone (constant
//! folding never sees per-transaction arguments), so the planner builds
//! the conflict graph over the block's *distinct entry points* — a
//! handful of nodes — rather than over its thousands of transactions,
//! and then buckets transactions into entry-level components with one
//! indexed pass. Transactions of one self-conflicting entry (any entry
//! that writes or stores blobs) genuinely conflict pairwise and share a
//! component; transactions of an isolated read-only entry are mutually
//! independent and become one schedulable unit each.
//!
//! Transactions whose footprint is dynamic split the batch: the prefix
//! segment runs (possibly in parallel), then the dynamic transaction
//! runs serially against the merged base, then the next segment starts.
//! A segment that could plausibly reach the flavor's entry-count limit
//! also falls back to serial, because limit faults depend on the exact
//! global entry count, which concurrent overlays cannot observe.
//!
//! Each result is passed through a caller-supplied mapping closure *on
//! the worker that produced it*, so callers that only need a summary
//! (gas, ops, success — see `ExecutionEngine::execute_block`) never
//! retain the receipts' event allocations.

use diablo_vm::{
    ContractState, EntryId, ExecError, Interpreter, Overlay, PreparedProgram, Receipt,
    StateLimits, TxContext,
};

/// One transaction of a committed batch: which entry point to run and
/// the transaction context to run it under.
pub type BlockTx = (EntryId, TxContext);

/// Union-find with union-by-minimum, so each component's representative
/// is its earliest member — components then enumerate in canonical
/// first-appearance order for free.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra < rb {
            self.parent[rb] = ra;
        } else if rb < ra {
            self.parent[ra] = rb;
        }
    }
}

/// Schedule-independent statistics about a block's conflict plan.
///
/// These describe the *block content* — how a batch decomposes into
/// conflict components, how much of it is forced serial — and are a
/// pure function of `(prepared, initial state, txs)`. They deliberately
/// ignore the worker count: the telemetry snapshot of a run must be
/// identical whether the block later executes serially or on any
/// number of threads, so nothing here may depend on the schedule. The
/// "imbalance" metric is the largest component's share of the block,
/// which bounds the best achievable speedup regardless of how
/// components are assigned to workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Transactions in the block.
    pub txs: usize,
    /// Multi-transaction conflict components across all static segments.
    pub components: usize,
    /// Singleton components (isolated read-only transactions).
    pub singletons: usize,
    /// Transactions forced serial: dynamic footprints plus segments
    /// whose plan degenerates (single component or entry-limit hazard).
    pub serial_fallback_txs: usize,
    /// Static segments that fell back to serial execution.
    pub serial_segments: usize,
    /// Size of the largest schedulable unit (component or serial
    /// segment) in transactions.
    pub largest_unit_txs: usize,
}

impl PlanStats {
    /// Largest schedulable unit as a percentage of the block — a
    /// schedule-independent imbalance bound (100 means the whole block
    /// is one unit and parallelism cannot help).
    pub fn imbalance_pct(&self) -> u64 {
        if self.txs == 0 {
            return 0;
        }
        (self.largest_unit_txs as u64 * 100) / self.txs as u64
    }

    /// Records the plan statistics into the telemetry recorder.
    pub fn record(&self) {
        diablo_telemetry::counter!("parallel.plan.blocks");
        diablo_telemetry::counter!("parallel.plan.components", self.components as u64);
        diablo_telemetry::counter!("parallel.plan.singletons", self.singletons as u64);
        diablo_telemetry::counter!(
            "parallel.plan.serial_fallback_txs",
            self.serial_fallback_txs as u64
        );
        diablo_telemetry::counter!(
            "parallel.plan.serial_segments",
            self.serial_segments as u64
        );
        diablo_telemetry::record!("parallel.plan.block_txs", self.txs as u64);
        diablo_telemetry::record!("parallel.plan.imbalance_pct", self.imbalance_pct());
    }
}

/// Computes the [`PlanStats`] of a block without executing it.
///
/// Mirrors the planner's segmentation (dynamic footprints split the
/// batch) and per-segment component decomposition, but never consults a
/// worker count, so the result is identical for serial and parallel
/// runs of the same block. The entry-limit hazard is evaluated against
/// the block's *initial* entry count for every segment — a pure
/// approximation of the planner's per-segment check (which sees the
/// state as it grows), close enough for telemetry and, crucially,
/// deterministic before execution starts.
pub fn plan_stats(
    prepared: &PreparedProgram,
    state: &ContractState,
    txs: &[BlockTx],
) -> PlanStats {
    let limits = prepared.flavor().state_limits();
    let mut stats = PlanStats {
        txs: txs.len(),
        ..PlanStats::default()
    };

    let mut seg_start = 0;
    for i in 0..=txs.len() {
        let at_dynamic = i < txs.len() && !prepared.rw_set(txs[i].0).is_static();
        if i == txs.len() || at_dynamic {
            if i > seg_start {
                segment_stats(prepared, state, &txs[seg_start..i], &limits, &mut stats);
            }
            if at_dynamic {
                stats.serial_fallback_txs += 1;
                stats.largest_unit_txs = stats.largest_unit_txs.max(1);
            }
            seg_start = i + 1;
        }
    }
    stats
}

/// Folds one all-static segment into `stats`, mirroring
/// [`ParallelExecutor::plan`] minus every thread-count test.
fn segment_stats(
    prepared: &PreparedProgram,
    state: &ContractState,
    seg: &[BlockTx],
    limits: &StateLimits,
    stats: &mut PlanStats,
) {
    let serial = |stats: &mut PlanStats| {
        stats.serial_segments += 1;
        stats.serial_fallback_txs += seg.len();
        stats.largest_unit_txs = stats.largest_unit_txs.max(seg.len());
    };

    if seg.len() < 2 {
        return serial(stats);
    }

    let mut tx_count = vec![0usize; prepared.entry_count()];
    let mut present: Vec<EntryId> = Vec::new();
    for (entry, _) in seg {
        if tx_count[entry.index()] == 0 {
            present.push(*entry);
        }
        tx_count[entry.index()] += 1;
    }

    let write_keys: usize = present
        .iter()
        .map(|&e| prepared.rw_set(e).writes.len() * tx_count[e.index()])
        .sum();
    if state.entry_count().saturating_add(write_keys) > limits.max_entries {
        return serial(stats);
    }

    let mut dsu = Dsu::new(present.len());
    for a in 0..present.len() {
        for b in a + 1..present.len() {
            if prepared
                .rw_set(present[a])
                .conflicts_with(prepared.rw_set(present[b]))
            {
                dsu.union(a, b);
            }
        }
    }

    let mut members = vec![0usize; present.len()];
    for slot in 0..present.len() {
        members[dsu.find(slot)] += 1;
    }
    let mut comp_size_of_root = vec![0usize; present.len()];
    let mut singletons = 0usize;
    let mut comp_count = 0usize;
    for (slot, &entry) in present.iter().enumerate() {
        let root = dsu.find(slot);
        let rw = prepared.rw_set(entry);
        if members[root] == 1 && rw.writes.is_empty() && !rw.stores_blob {
            singletons += tx_count[entry.index()];
            continue;
        }
        if comp_size_of_root[root] == 0 {
            comp_count += 1;
        }
        comp_size_of_root[root] += tx_count[entry.index()];
    }
    if comp_count + singletons < 2 {
        return serial(stats);
    }

    stats.components += comp_count;
    stats.singletons += singletons;
    let largest = comp_size_of_root.iter().copied().max().unwrap_or(0).max(
        usize::from(singletons > 0),
    );
    stats.largest_unit_txs = stats.largest_unit_txs.max(largest);
}

/// Executes committed batches across a scoped worker pool while
/// preserving serial semantics bit for bit. See the module docs for the
/// scheduling model.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor that uses up to `threads` workers per segment (a
    /// value below 2 degenerates to serial execution).
    pub fn new(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `txs` against `state`, returning `map(index, outcome)`
    /// per transaction, in canonical order. Outcomes — receipts, errors,
    /// rollbacks and the final state — are identical to running
    /// [`Interpreter::execute_prepared`] over the batch serially; `map`
    /// runs on the worker that executed the transaction, so summaries
    /// never ship the receipt's allocations across the merge.
    pub fn execute<R, F>(
        &self,
        vm: &Interpreter,
        prepared: &PreparedProgram,
        state: &mut ContractState,
        txs: &[BlockTx],
        map: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Result<Receipt, ExecError>) -> R + Sync,
    {
        let limits = prepared.flavor().state_limits();
        let mut results: Vec<Option<R>> = (0..txs.len()).map(|_| None).collect();

        // Split the batch at transactions without a static footprint:
        // those run serially against the merged base, in order.
        let mut seg_start = 0;
        for i in 0..=txs.len() {
            let at_dynamic = i < txs.len() && !prepared.rw_set(txs[i].0).is_static();
            if i == txs.len() || at_dynamic {
                if i > seg_start {
                    self.run_segment(
                        vm,
                        prepared,
                        state,
                        txs,
                        seg_start..i,
                        &limits,
                        &map,
                        &mut results,
                    );
                }
                if at_dynamic {
                    let (entry, ctx) = &txs[i];
                    results[i] = Some(map(i, vm.execute_prepared(prepared, *entry, ctx, state)));
                }
                seg_start = i + 1;
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every transaction was slotted"))
            .collect()
    }

    /// Executes one all-static segment, in parallel when it decomposes
    /// into ≥ 2 conflict components and no entry-limit hazard exists.
    #[allow(clippy::too_many_arguments)]
    fn run_segment<R, F>(
        &self,
        vm: &Interpreter,
        prepared: &PreparedProgram,
        state: &mut ContractState,
        txs: &[BlockTx],
        range: std::ops::Range<usize>,
        limits: &StateLimits,
        map: &F,
        results: &mut [Option<R>],
    ) where
        R: Send,
        F: Fn(usize, Result<Receipt, ExecError>) -> R + Sync,
    {
        let seg = &txs[range.clone()];
        let offset = range.start;

        let comps = self.plan(prepared, state, seg, limits);
        let Some(comps) = comps else {
            for (j, (entry, ctx)) in seg.iter().enumerate() {
                results[offset + j] =
                    Some(map(offset + j, vm.execute_prepared(prepared, *entry, ctx, state)));
            }
            return;
        };

        // Whole components go to the least-loaded worker, in order: a
        // component's transactions stay in canonical order on one worker
        // and no inter-wave barrier is needed, because components are
        // mutually conflict-free by construction.
        let workers = self.threads.min(comps.len());
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for comp in comps {
            let w = (0..workers)
                .min_by_key(|&w| assignments[w].len())
                .expect("at least one worker");
            assignments[w].extend(comp);
        }

        let base: &ContractState = state;
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|ixs| {
                    scope.spawn(move || {
                        let mut overlay = Overlay::new(base);
                        let out: Vec<(usize, R)> = ixs
                            .iter()
                            .map(|&j| {
                                let (entry, ctx) = &seg[j];
                                let r = vm.execute_prepared(prepared, *entry, ctx, &mut overlay);
                                (j, map(offset + j, r))
                            })
                            .collect();
                        (out, overlay.into_delta())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        });

        for (out, delta) in outcomes {
            state.apply(delta);
            for (j, r) in out {
                results[offset + j] = Some(r);
            }
        }
    }

    /// Plans a segment: `Some(components)`, each a canonically ordered
    /// transaction-index list, when parallel execution is both
    /// profitable and provably serial-equivalent; `None` to request the
    /// serial fallback.
    ///
    /// The conflict graph is built over the distinct entry points of the
    /// segment (footprints are per-entry), then transactions bucket into
    /// their entry's component with one indexed pass. Transactions of an
    /// isolated read-only entry do not conflict with anything, not even
    /// each other, and are emitted as singleton components.
    fn plan(
        &self,
        prepared: &PreparedProgram,
        state: &ContractState,
        seg: &[BlockTx],
        limits: &StateLimits,
    ) -> Option<Vec<Vec<usize>>> {
        if seg.len() < 2 || self.threads < 2 {
            return None;
        }

        // Distinct entries present, in first-transaction order, plus the
        // per-entry transaction counts.
        let mut tx_count = vec![0usize; prepared.entry_count()];
        let mut present: Vec<EntryId> = Vec::new();
        for (entry, _) in seg {
            if tx_count[entry.index()] == 0 {
                present.push(*entry);
            }
            tx_count[entry.index()] += 1;
        }

        // Entry-limit hazard: if every static write key were new, could
        // the block approach the flavor's entry cap? Overlays enforce
        // the cap exactly per worker but cannot see each other's
        // insertions, so near the cap only serial execution observes
        // the faults at the right transactions.
        let write_keys: usize = present
            .iter()
            .map(|&e| prepared.rw_set(e).writes.len() * tx_count[e.index()])
            .sum();
        if state.entry_count().saturating_add(write_keys) > limits.max_entries {
            return None;
        }

        // Conflict components over the distinct entries (a handful of
        // nodes, so the quadratic pair scan is trivially cheap).
        let mut dsu = Dsu::new(present.len());
        for a in 0..present.len() {
            for b in a + 1..present.len() {
                if prepared
                    .rw_set(present[a])
                    .conflicts_with(prepared.rw_set(present[b]))
                {
                    dsu.union(a, b);
                }
            }
        }

        // Component ids in first-appearance order. An entry *splits*
        // (one singleton component per transaction) when it is alone in
        // its component and read-only: its transactions conflict with
        // nothing at all. usize::MAX marks a splitting entry.
        let mut comp_count = 0usize;
        let mut comp_of_slot = vec![0usize; present.len()];
        let mut comp_sizes: Vec<usize> = Vec::new();
        let mut members = vec![0usize; present.len()]; // per root
        for slot in 0..present.len() {
            members[dsu.find(slot)] += 1;
        }
        let mut comp_of_root = vec![usize::MAX; present.len()];
        let mut singletons = 0usize;
        for (slot, &entry) in present.iter().enumerate() {
            let root = dsu.find(slot);
            let rw = prepared.rw_set(entry);
            if members[root] == 1 && rw.writes.is_empty() && !rw.stores_blob {
                comp_of_slot[slot] = usize::MAX;
                singletons += tx_count[entry.index()];
                continue;
            }
            if comp_of_root[root] == usize::MAX {
                comp_of_root[root] = comp_count;
                comp_sizes.push(0);
                comp_count += 1;
            }
            comp_of_slot[slot] = comp_of_root[root];
            comp_sizes[comp_of_root[root]] += tx_count[entry.index()];
        }
        if comp_count + singletons < 2 {
            return None;
        }

        // Bucket transactions, canonical order within each component;
        // splitting entries append singleton components as they occur.
        let mut comp_of_entry = vec![usize::MAX; prepared.entry_count()];
        for (slot, &entry) in present.iter().enumerate() {
            comp_of_entry[entry.index()] = comp_of_slot[slot];
        }
        let mut comps: Vec<Vec<usize>> = comp_sizes
            .iter()
            .map(|&n| Vec::with_capacity(n))
            .collect();
        for (j, (entry, _)) in seg.iter().enumerate() {
            match comp_of_entry[entry.index()] {
                usize::MAX => comps.push(vec![j]),
                c => comps[c].push(j),
            }
        }
        Some(comps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_contracts::{build, DApp};
    use diablo_vm::{VmFlavor, Word};

    fn block(prepared: &PreparedProgram, specs: &[(&str, Vec<Word>)]) -> Vec<BlockTx> {
        specs
            .iter()
            .enumerate()
            .map(|(seq, (entry, args))| {
                let entry = prepared.entry_id(entry).expect("entry exists");
                let ctx = TxContext {
                    caller: (seq % 10_000) as i64 + 1,
                    args: args.clone(),
                    payload_bytes: 0,
                    gas_limit: u64::MAX,
                };
                (entry, ctx)
            })
            .collect()
    }

    fn serial(
        vm: &Interpreter,
        prepared: &PreparedProgram,
        state: &mut ContractState,
        txs: &[BlockTx],
    ) -> Vec<Result<Receipt, ExecError>> {
        txs.iter()
            .map(|(entry, ctx)| vm.execute_prepared(prepared, *entry, ctx, state))
            .collect()
    }

    fn assert_parallel_matches_serial(dapp: DApp, specs: &[(&str, Vec<Word>)], threads: usize) {
        let contract = build(dapp, VmFlavor::Geth).expect("buildable on geth");
        let vm = Interpreter::new(VmFlavor::Geth);
        let txs = block(&contract.prepared, specs);

        let mut s_state = contract.initial_state.clone();
        let want = serial(&vm, &contract.prepared, &mut s_state, &txs);

        let mut p_state = contract.initial_state.clone();
        let got = ParallelExecutor::new(threads).execute(
            &vm,
            &contract.prepared,
            &mut p_state,
            &txs,
            |_, r| r,
        );

        assert_eq!(want, got, "{dapp:?} receipts diverged at {threads} threads");
        assert_eq!(s_state, p_state, "{dapp:?} state diverged at {threads} threads");
    }

    #[test]
    fn exchange_block_matches_serial_at_all_thread_counts() {
        // A conflict-light block: the five stocks form five independent
        // components that really do execute concurrently.
        let buys = ["buyGoogle", "buyApple", "buyFacebook", "buyAmazon", "buyMicrosoft"];
        let specs: Vec<(&str, Vec<Word>)> =
            (0..60).map(|i| (buys[i % buys.len()], vec![])).collect();
        for threads in [2, 4, 8] {
            assert_parallel_matches_serial(DApp::Exchange, &specs, threads);
        }
    }

    #[test]
    fn read_write_conflicts_collapse_to_one_component() {
        // checkStock reads all five stock keys, so it conflicts with
        // every buy: the planner must see a single component and fall
        // back to serial — and stay bit-identical doing so.
        let mut specs: Vec<(&str, Vec<Word>)> = Vec::new();
        let buys = ["buyGoogle", "buyApple", "buyFacebook", "buyAmazon", "buyMicrosoft"];
        for i in 0..30 {
            specs.push((buys[i % buys.len()], vec![]));
            if i % 7 == 0 {
                specs.push(("checkStock", vec![]));
            }
        }
        assert_parallel_matches_serial(DApp::Exchange, &specs, 4);
    }

    #[test]
    fn isolated_readers_split_into_singletons() {
        // A checkStock-only block: no writer is present, so every
        // read-only transaction is independent and the planner emits one
        // singleton component per transaction — fully parallel, still
        // bit-identical.
        let specs: Vec<(&str, Vec<Word>)> =
            (0..24).map(|_| ("checkStock", vec![])).collect();
        let contract = build(DApp::Exchange, VmFlavor::Geth).expect("buildable");
        let txs = block(&contract.prepared, &specs);
        let executor = ParallelExecutor::new(4);
        let limits = contract.prepared.flavor().state_limits();
        let comps = executor
            .plan(&contract.prepared, &contract.initial_state, &txs, &limits)
            .expect("parallel plan");
        assert_eq!(comps.len(), specs.len(), "one singleton per read");
        assert_parallel_matches_serial(DApp::Exchange, &specs, 4);
    }

    #[test]
    fn dynamic_footprints_fall_back_to_serial_and_still_match() {
        // Gaming's update() reads and writes keys derived from loop
        // locals — every transaction is dynamic, so the executor must
        // run the whole block serially and still be bit-identical.
        let specs: Vec<(&str, Vec<Word>)> =
            (0..12).map(|i| ("update", vec![1 + (i % 3), 1])).collect();
        assert_parallel_matches_serial(DApp::Gaming, &specs, 4);
    }

    #[test]
    fn mixed_static_and_dynamic_segments_match_serial() {
        // WebService add/get are static on key 0 (one component — the
        // planner degenerates to serial), interleaved here with nothing
        // dynamic; then check a single-component case stays correct.
        let specs: Vec<(&str, Vec<Word>)> = (0..20)
            .map(|i| if i % 3 == 0 { ("get", vec![]) } else { ("add", vec![]) })
            .collect();
        assert_parallel_matches_serial(DApp::WebService, &specs, 4);
    }

    #[test]
    fn plan_stats_decompose_conflict_light_block() {
        // Five stocks → five multi-tx components; no singletons, no
        // serial fallbacks, largest unit = 60/5 = 12 txs (20% share).
        let buys = ["buyGoogle", "buyApple", "buyFacebook", "buyAmazon", "buyMicrosoft"];
        let specs: Vec<(&str, Vec<Word>)> =
            (0..60).map(|i| (buys[i % buys.len()], vec![])).collect();
        let contract = build(DApp::Exchange, VmFlavor::Geth).expect("buildable");
        let txs = block(&contract.prepared, &specs);
        let stats = plan_stats(&contract.prepared, &contract.initial_state, &txs);
        assert_eq!(stats.txs, 60);
        assert_eq!(stats.components, 5);
        assert_eq!(stats.singletons, 0);
        assert_eq!(stats.serial_fallback_txs, 0);
        assert_eq!(stats.serial_segments, 0);
        assert_eq!(stats.largest_unit_txs, 12);
        assert_eq!(stats.imbalance_pct(), 20);
    }

    #[test]
    fn plan_stats_are_schedule_independent_and_match_plan_shape() {
        // checkStock conflicts with every buy: one component spans the
        // whole block, so the planner falls back to serial — and the
        // pure stats must say so without ever consulting a thread count.
        let mut specs: Vec<(&str, Vec<Word>)> = Vec::new();
        let buys = ["buyGoogle", "buyApple", "buyFacebook", "buyAmazon", "buyMicrosoft"];
        for i in 0..30 {
            specs.push((buys[i % buys.len()], vec![]));
            if i % 7 == 0 {
                specs.push(("checkStock", vec![]));
            }
        }
        let contract = build(DApp::Exchange, VmFlavor::Geth).expect("buildable");
        let txs = block(&contract.prepared, &specs);
        let stats = plan_stats(&contract.prepared, &contract.initial_state, &txs);
        assert_eq!(stats.txs, txs.len());
        assert_eq!(stats.components, 0, "a single component degenerates to serial");
        assert_eq!(stats.serial_segments, 1);
        assert_eq!(stats.serial_fallback_txs, txs.len());
        assert_eq!(stats.imbalance_pct(), 100);

        // Dynamic footprints (Gaming's update) force serial fallbacks.
        let specs: Vec<(&str, Vec<Word>)> =
            (0..12).map(|i| ("update", vec![1 + (i % 3), 1])).collect();
        let contract = build(DApp::Gaming, VmFlavor::Geth).expect("buildable");
        let txs = block(&contract.prepared, &specs);
        let stats = plan_stats(&contract.prepared, &contract.initial_state, &txs);
        assert_eq!(stats.serial_fallback_txs, 12, "every dynamic tx is serial");
        assert_eq!(stats.components, 0);
    }

    #[test]
    fn single_threaded_executor_is_serial() {
        let contract = build(DApp::Exchange, VmFlavor::Geth).unwrap();
        let vm = Interpreter::new(VmFlavor::Geth);
        let txs = block(&contract.prepared, &[("buyGoogle", vec![]), ("buyApple", vec![])]);
        let mut state = contract.initial_state.clone();
        let got =
            ParallelExecutor::new(1).execute(&vm, &contract.prepared, &mut state, &txs, |_, r| r);
        let mut s_state = contract.initial_state.clone();
        let want = serial(&vm, &contract.prepared, &mut s_state, &txs);
        assert_eq!(want, got);
        assert_eq!(s_state, state);
    }
}
