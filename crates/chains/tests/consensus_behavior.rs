//! Behavioural tests of the per-chain mechanisms, each pinned to the
//! paper's description of that mechanism.

use diablo_chains::{
    Chain, ChainParams, ConsensusKind, Experiment, MempoolPolicy, RunResult, TxStatus,
};
use diablo_contracts::DApp;
use diablo_net::{DeploymentConfig, DeploymentKind};
use diablo_sim::SimDuration;
use diablo_workloads::traces;

fn run(chain: Chain, kind: DeploymentKind, tps: f64, secs: u64) -> RunResult {
    Experiment::new(chain, kind, traces::constant(tps, secs)).run()
}

fn params(chain: Chain, kind: DeploymentKind) -> ChainParams {
    ChainParams::standard(chain, &DeploymentConfig::standard(kind))
}

// ---- Solana: confirmations and blockhash expiry (§5.2) ----

#[test]
fn solana_latency_floor_is_thirty_slots() {
    let r = run(Chain::Solana, DeploymentKind::Testnet, 50.0, 20);
    // 30 confirmations × 400 ms slots = 12 s before detection.
    let min = r
        .records
        .iter()
        .filter_map(|rec| rec.latency_secs())
        .fold(f64::MAX, f64::min);
    assert!(min >= 12.0, "fastest commit {min}");
}

#[test]
fn solana_expires_stale_blockhashes() {
    // Give Solana a deep pool so overload queues instead of dropping at
    // admission; transactions older than 120 s then lose their recent
    // blockhash and are evicted (§5.2).
    let mut p = params(Chain::Solana, DeploymentKind::Testnet);
    p.mempool = MempoolPolicy::bounded(1_000_000);
    let r = Experiment::new(
        Chain::Solana,
        DeploymentKind::Testnet,
        traces::constant(5_000.0, 150),
    )
    .with_params(p)
    .with_grace(30)
    .run();
    assert!(
        r.count_status(TxStatus::DroppedExpired) > 0,
        "expected blockhash expiries: {}",
        r.summary()
    );
    // No committed transaction can be older than the expiry window plus
    // the confirmation pipeline.
    let max = r.max_latency_secs();
    assert!(
        max < 120.0 + 15.0,
        "latency {max} exceeds expiry + finality"
    );
}

// ---- Diem: HotStuff pacemaker (§6.2/§6.6) ----

#[test]
fn diem_pacemaker_wastes_rounds_on_wan() {
    // Same offered load; the WAN deployment commits less because phases
    // exceed the LAN-tuned pacemaker timeout.
    let lan = run(Chain::Diem, DeploymentKind::Testnet, 800.0, 60);
    let wan = run(Chain::Diem, DeploymentKind::Devnet, 800.0, 60);
    assert!(lan.commit_ratio() > 0.99, "{}", lan.summary());
    assert!(
        wan.avg_throughput() < lan.avg_throughput() * 0.8,
        "WAN {} vs LAN {}",
        wan.summary(),
        lan.summary()
    );
}

#[test]
fn diem_per_sender_cap_reports_distinct_status() {
    // Few signers + sustained load ⇒ per-sender refusals, not pool-full.
    let mut p = params(Chain::Diem, DeploymentKind::Testnet);
    p.accounts = 2;
    let r = Experiment::new(
        Chain::Diem,
        DeploymentKind::Testnet,
        traces::constant(5_000.0, 30),
    )
    .with_params(p)
    .run();
    assert!(
        r.count_status(TxStatus::DroppedPerSender) > 0,
        "{}",
        r.summary()
    );
}

// ---- Ethereum: London fees and nonce gaps (§5.2/§6.3) ----

#[test]
fn ethereum_commits_resume_after_a_burst_fee_spike() {
    // A burst spikes the base fee; the tail then decays it, and the
    // burst's leftover transactions commit late — the Figure 6 tail.
    let r = Experiment::new(
        Chain::Ethereum,
        DeploymentKind::Consortium,
        traces::google(),
    )
    .with_dapp(DApp::Exchange)
    .run();
    assert!(r.commit_ratio() > 0.97, "{}", r.summary());
    assert!(
        r.max_latency_secs() > 30.0,
        "expected a late tail: {}",
        r.summary()
    );
}

#[test]
fn ethereum_nonce_gaps_stall_senders_after_drops() {
    let r = run(Chain::Ethereum, DeploymentKind::Testnet, 10_000.0, 120);
    let dropped = r.count_status(TxStatus::DroppedPoolFull);
    let pending = r.count_status(TxStatus::Pending);
    assert!(dropped > 0, "overload must overflow the pool");
    assert!(
        pending > r.committed() * 10,
        "nonce-stalled transactions pile up as pending: {}",
        r.summary()
    );
}

// ---- Quorum: IBFT never drops; unbounded queue collapses (§6.3/§6.5) ----

#[test]
fn quorum_never_reports_admission_drops() {
    let r = run(Chain::Quorum, DeploymentKind::Testnet, 10_000.0, 60);
    assert_eq!(r.count_status(TxStatus::DroppedPoolFull), 0);
    assert_eq!(r.count_status(TxStatus::DroppedPerSender), 0);
    assert_eq!(r.count_status(TxStatus::DroppedExpired), 0);
}

#[test]
fn quorum_block_interval_grows_with_backlog() {
    // Under sustained overload the commit rate decays over the run —
    // the pool-scan assembly cost at work.
    let r = run(Chain::Quorum, DeploymentKind::Testnet, 10_000.0, 120);
    let series = r.commit_series();
    let early: u64 = (0..30).map(|s| series.get(s)).sum();
    let late: u64 = (90..120).map(|s| series.get(s)).sum();
    assert!(
        late * 2 < early,
        "commits must decay as the queue grows: early {early}, late {late}"
    );
}

// ---- Avalanche: throttled period, adaptive under load (§5.2/§6.2) ----

#[test]
fn avalanche_throughput_is_load_invariant() {
    let low = run(Chain::Avalanche, DeploymentKind::Testnet, 1_000.0, 120);
    let high = run(Chain::Avalanche, DeploymentKind::Testnet, 10_000.0, 120);
    let ratio = high.avg_throughput() / low.avg_throughput().max(1.0);
    assert!(
        (0.8..1.6).contains(&ratio),
        "throttled chain: ratio {ratio}"
    );
}

#[test]
fn avalanche_gas_limit_caps_transfer_throughput() {
    // 8M gas / 21k per transfer / 1.18 s loaded period ≈ 322 TPS.
    let r = run(Chain::Avalanche, DeploymentKind::Testnet, 2_000.0, 120);
    assert!(r.avg_throughput() < 340.0, "{}", r.summary());
    assert!(r.avg_throughput() > 200.0, "{}", r.summary());
}

// ---- Algorand: WAN-insensitive rounds, bounded pool (§5.2/§6.5) ----

#[test]
fn algorand_drops_bursts_at_the_pool() {
    let r = Experiment::new(Chain::Algorand, DeploymentKind::Consortium, traces::apple())
        .with_dapp(DApp::Exchange)
        .run();
    assert!(
        r.count_status(TxStatus::DroppedPoolFull) > 1_000,
        "{}",
        r.summary()
    );
}

// ---- Block production timing matches the protocol constants ----

#[test]
fn observed_block_intervals_match_protocol_timing() {
    // Saturating load so block production runs at its floor; the
    // observed interval must match the §5.2 timing constants.
    let interval = |chain| {
        Experiment::new(
            chain,
            DeploymentKind::Testnet,
            traces::constant(3_000.0, 60),
        )
        .run()
        .mean_block_interval_secs()
    };
    let solana = interval(Chain::Solana);
    assert!((0.38..0.45).contains(&solana), "Solana slots: {solana}");
    let avalanche = interval(Chain::Avalanche);
    assert!(
        (1.1..1.4).contains(&avalanche),
        "Avalanche period: {avalanche}"
    );
    let ethereum = interval(Chain::Ethereum);
    assert!(
        (14.0..16.5).contains(&ethereum),
        "Clique period: {ethereum}"
    );
    let algorand = interval(Chain::Algorand);
    assert!((3.4..4.6).contains(&algorand), "BA rounds: {algorand}");
}

#[test]
fn blocks_cover_all_commits() {
    // Conservation: transactions in blocks == committed + failed.
    let r = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Testnet,
        traces::constant(500.0, 30),
    )
    .run();
    let in_blocks: u64 = r.blocks.iter().map(|b| b.txs as u64).sum();
    let decided = r.committed() + r.count_status(TxStatus::Failed);
    // Blocks committed near the deadline may still await confirmation.
    assert!(in_blocks >= decided, "{in_blocks} < {decided}");
    assert!(in_blocks <= r.submitted());
}

// ---- Ablation plumbing: parameter overrides really apply ----

#[test]
fn parameter_overrides_change_behaviour() {
    let mut p = params(Chain::Solana, DeploymentKind::Testnet);
    p.confirmations = 0;
    p.mempool = MempoolPolicy::bounded(1_000_000);
    let fast = Experiment::new(
        Chain::Solana,
        DeploymentKind::Testnet,
        traces::constant(100.0, 20),
    )
    .with_params(p)
    .run();
    let normal = run(Chain::Solana, DeploymentKind::Testnet, 100.0, 20);
    assert!(fast.avg_latency_secs() < 2.0, "{}", fast.summary());
    assert!(normal.avg_latency_secs() > 12.0, "{}", normal.summary());
}

#[test]
fn consensus_kind_override_applies() {
    let mut p = params(Chain::Ethereum, DeploymentKind::Testnet);
    p.consensus = ConsensusKind::Clique {
        period: SimDuration::from_secs(1),
    };
    let fast = Experiment::new(
        Chain::Ethereum,
        DeploymentKind::Testnet,
        traces::constant(100.0, 30),
    )
    .with_params(p)
    .run();
    let slow = run(Chain::Ethereum, DeploymentKind::Testnet, 100.0, 30);
    assert!(
        fast.avg_throughput() > slow.avg_throughput(),
        "1 s blocks must outrun 15 s blocks: {} vs {}",
        fast.summary(),
        slow.summary()
    );
}
