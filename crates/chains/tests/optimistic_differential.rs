//! Differential property test: optimistic (Block-STM-style) block
//! execution is bit-identical to serial execution.
//!
//! Random committed blocks — mixes of transfers, workload-default calls
//! and explicitly selected entry points — are executed through
//! [`ExecutionEngine::execute_block`] once on a serial engine and once
//! per [`Concurrency::Optimistic`] worker count (2, 4 and 8). Every
//! engine must agree on every per-transaction `ExecCost` (gas, ops,
//! success) and on the final `ContractState` after every block, across
//! all four VM flavors and all five DApps (skipping flavor × DApp
//! combinations the paper itself cannot build). Blocks are fed in
//! chunks so state chains across consecutive committed blocks,
//! exercising speculation against an evolving committed base.
//!
//! The Zipfian case below is the workload the optimistic executor
//! exists for: Gaming `update` calls whose player argument is drawn
//! from a heavy-tailed distribution, producing hot per-player write
//! chains with *dynamic* footprints. The static scheduler refuses to
//! plan such blocks and falls back to ordered serial execution; the
//! optimistic executor speculates them and must converge — through
//! validation aborts, re-executions and the serial valve — to the
//! bit-exact serial result (the protocol and its determinism argument
//! are specified in `docs/EXECUTION.md` §4).
//!
//! Runs on the in-tree `diablo-testkit` harness: failures shrink and
//! print a `DIABLO_PROP_SEED=<seed>` line that replays the exact case;
//! `DIABLO_PROP_CASES` scales the case count.

use diablo_chains::tx::CallSel;
use diablo_chains::{Concurrency, ExecMode, ExecutionEngine, Payload};
use diablo_contracts::{calls, DApp};
use diablo_testkit::gen::{u64s, u8s, usizes, vecs};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};
use diablo_vm::VmFlavor;

/// The worker counts the issue requires equivalence at.
const THREADS: [usize; 3] = [2, 4, 8];

/// Turns one generated `(seq, selector)` pair into a payload for `dapp`
/// (same grammar as the static-parallel differential: transfers,
/// workload-default calls, explicit entry selections).
fn payload_for(dapp: DApp, seq: u64, selector: u8) -> Payload {
    match selector % 10 {
        0 => Payload::Transfer,
        1..=7 => Payload::Invoke {
            dapp,
            seq,
            call: None,
        },
        _ => {
            let n_entries = calls::entries(dapp).len() as u8;
            Payload::Invoke {
                dapp,
                seq,
                call: Some(CallSel {
                    entry: selector % n_entries,
                    args: [(seq % 9) as i32, 1 + (selector % 3) as i32],
                    argc: selector % 3,
                }),
            }
        }
    }
}

/// A fresh Exact-mode engine, or `None` when the flavor cannot build
/// the DApp (the paper's own gaps).
fn engine(flavor: VmFlavor, dapp: DApp, concurrency: Concurrency) -> Option<ExecutionEngine> {
    ExecutionEngine::with_dapp(flavor, ExecMode::Exact, dapp)
        .ok()
        .map(|e| e.with_concurrency(concurrency))
}

#[test]
fn optimistic_block_execution_is_bit_identical_to_serial() {
    Property::new("optimistic_block_execution_is_bit_identical_to_serial")
        .cases(96)
        .check(
            &(
                (usizes(0..=3), usizes(0..=4), usizes(0..=2)),
                vecs((u64s(0..=50_000), u8s(0..=255)), 2..=48),
            ),
            |((flavor_idx, dapp_idx, threads_idx), txs)| {
                let flavor = VmFlavor::ALL[*flavor_idx];
                let dapp = DApp::ALL[*dapp_idx];
                let threads = THREADS[*threads_idx];

                let Some(mut serial) = engine(flavor, dapp, Concurrency::Serial) else {
                    return Ok(());
                };
                let mut optimistic = engine(flavor, dapp, Concurrency::Optimistic(threads))
                    .expect("buildable above");

                // Mobility on geth has no hard budget, so every call
                // really runs its ~1.4 M instructions; keep those blocks
                // short so the property stays fast.
                let cap = if dapp == DApp::Mobility && flavor == VmFlavor::Geth {
                    4
                } else {
                    txs.len()
                };
                let payloads: Vec<Payload> = txs
                    .iter()
                    .take(cap)
                    .map(|&(seq, selector)| payload_for(dapp, seq, selector))
                    .collect();

                // Feed the block in chunks: speculation must stay exact
                // against the committed state the previous chunk left.
                for chunk in payloads.chunks(17) {
                    let want = serial.execute_block(chunk);
                    let got = optimistic.execute_block(chunk);
                    prop_assert_eq!(
                        want,
                        got,
                        "costs diverged: {:?} on {} at {} workers",
                        dapp,
                        flavor,
                        threads
                    );
                    let s = &serial.contract().expect("deployed").initial_state;
                    let o = &optimistic.contract().expect("deployed").initial_state;
                    prop_assert!(
                        s == o,
                        "state diverged: {:?} on {} at {} workers",
                        dapp,
                        flavor,
                        threads
                    );
                }
                Ok(())
            },
        );
}

/// Maps a uniform draw to a Zipf-like player id: player 1 with
/// probability 1/2, player 2 with 1/4, … — a heavy-tailed hot-account
/// distribution over 64 players, built from the leading-zero count so
/// the skew is exact and needs no floating point.
fn zipfian_player(r: u64) -> i32 {
    1 + (r | 1).leading_zeros().min(63) as i32
}

/// The hot-account workload the static scheduler cannot parallelize:
/// Zipf-distributed Gaming `update(player, delta)` calls. Dynamic
/// per-player footprints force the static executor into its serial
/// fallback; the optimistic executor speculates the skewed chains and
/// must converge to the serial result at every worker count — this is
/// the acceptance case for the issue's "dynamic-key hot-account
/// workload" requirement, replayable via `DIABLO_PROP_SEED`.
#[test]
fn zipfian_hot_account_blocks_converge_at_every_worker_count() {
    Property::new("zipfian_hot_account_blocks_converge_at_every_worker_count")
        .cases(32)
        .check(
            &(usizes(0..=3), vecs(u64s(0..=u64::MAX), 16..=96)),
            |(flavor_idx, draws)| {
                let flavor = VmFlavor::ALL[*flavor_idx];
                let Some(mut serial) = engine(flavor, DApp::Gaming, Concurrency::Serial) else {
                    return Ok(());
                };
                let mut optimistic: Vec<ExecutionEngine> = THREADS
                    .iter()
                    .map(|&t| {
                        engine(flavor, DApp::Gaming, Concurrency::Optimistic(t))
                            .expect("buildable above")
                    })
                    .collect();

                let payloads: Vec<Payload> = draws
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| Payload::Invoke {
                        dapp: DApp::Gaming,
                        seq: i as u64,
                        call: Some(CallSel {
                            entry: 0, // "update"
                            args: [zipfian_player(r), 1 + (r % 3) as i32],
                            argc: 2,
                        }),
                    })
                    .collect();

                for chunk in payloads.chunks(17) {
                    let want = serial.execute_block(chunk);
                    let s = &serial.contract().expect("deployed").initial_state;
                    for (engine, &threads) in optimistic.iter_mut().zip(THREADS.iter()) {
                        let got = engine.execute_block(chunk);
                        prop_assert_eq!(
                            want.clone(),
                            got,
                            "hot-account costs diverged on {} at {} workers",
                            flavor,
                            threads
                        );
                        let o = &engine.contract().expect("deployed").initial_state;
                        prop_assert!(
                            s == o,
                            "hot-account state diverged on {} at {} workers",
                            flavor,
                            threads
                        );
                    }
                }
                Ok(())
            },
        );
}

/// Conservation under speculation: large conflict-light Exchange blocks
/// are where the optimistic executor commits almost everything in one
/// round — and where a validation bug (stale read admitted, delta
/// applied twice, wrong commit order) would show as a supply-counter
/// mismatch rather than an assertion inside the executor.
#[test]
fn exchange_supply_counters_survive_optimistic_commits() {
    Property::new("exchange_supply_counters_survive_optimistic_commits")
        .cases(24)
        .check(
            &(usizes(0..=2), vecs(u64s(0..=1_000_000), 32..=160)),
            |(threads_idx, seqs)| {
                let threads = THREADS[*threads_idx];
                let mut engine = engine(
                    VmFlavor::Geth,
                    DApp::Exchange,
                    Concurrency::Optimistic(threads),
                )
                .expect("exchange builds on geth");
                let payloads: Vec<Payload> = seqs
                    .iter()
                    .map(|&seq| Payload::Invoke {
                        dapp: DApp::Exchange,
                        seq,
                        call: None,
                    })
                    .collect();
                let costs = engine.execute_block(&payloads);
                prop_assert!(costs.iter().all(|c| c.ok), "all buys must succeed");
                let state = &engine.contract().expect("deployed").initial_state;
                for stock in diablo_contracts::exchange::Stock::ALL {
                    let bought = seqs
                        .iter()
                        .filter(|&&seq| (seq % 5) == stock.key() as u64)
                        .count() as i64;
                    prop_assert_eq!(
                        state.load(stock.key()),
                        diablo_contracts::exchange::INITIAL_SUPPLY - bought,
                        "stock {} supply drifted at {} workers",
                        stock.ticker(),
                        threads
                    );
                }
                Ok(())
            },
        );
}
