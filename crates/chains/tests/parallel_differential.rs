//! Differential property test: parallel block execution is bit-identical
//! to serial execution.
//!
//! Random committed blocks — mixes of transfers, workload-default calls
//! and explicitly selected entry points — are executed twice through
//! [`ExecutionEngine::execute_block`]: once on a serial engine and once
//! on an engine configured with [`Concurrency::Parallel`] at 2, 4 or 8
//! threads. Both engines must agree on every per-transaction
//! [`ExecCost`] (gas, ops, success) and on the final `ContractState`
//! after every block, across all four VM flavors and all five DApps
//! (skipping flavor × DApp combinations the paper itself cannot build,
//! e.g. video sharing on the AVM). Blocks are fed in chunks so state
//! chains across multiple committed blocks, exercising segment merges
//! against an evolving base.
//!
//! Runs on the in-tree `diablo-testkit` harness: failures shrink and
//! print a `DIABLO_PROP_SEED=<seed>` line that replays the exact case;
//! `DIABLO_PROP_CASES` scales the case count.

use diablo_chains::{Concurrency, ExecMode, ExecutionEngine, Payload};
use diablo_chains::tx::CallSel;
use diablo_contracts::{calls, DApp};
use diablo_testkit::gen::{u64s, u8s, usizes, vecs};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};
use diablo_vm::VmFlavor;

/// The thread counts the issue requires equivalence at.
const THREADS: [usize; 3] = [2, 4, 8];

/// Turns one generated `(seq, selector)` pair into a payload for `dapp`.
fn payload_for(dapp: DApp, seq: u64, selector: u8) -> Payload {
    match selector % 10 {
        0 => Payload::Transfer,
        1..=7 => Payload::Invoke {
            dapp,
            seq,
            call: None,
        },
        _ => {
            // An explicitly selected entry point with small arguments —
            // reaches read-only entries (checkStock, get, owner) the
            // default workload stream never issues.
            let n_entries = calls::entries(dapp).len() as u8;
            Payload::Invoke {
                dapp,
                seq,
                call: Some(CallSel {
                    entry: selector % n_entries,
                    args: [(seq % 9) as i32, 1 + (selector % 3) as i32],
                    argc: selector % 3,
                }),
            }
        }
    }
}

#[test]
fn parallel_block_execution_is_bit_identical_to_serial() {
    Property::new("parallel_block_execution_is_bit_identical_to_serial")
        .cases(96)
        .check(
            &(
                (usizes(0..=3), usizes(0..=4), usizes(0..=2)),
                vecs((u64s(0..=50_000), u8s(0..=255)), 2..=48),
            ),
            |((flavor_idx, dapp_idx, threads_idx), txs)| {
                let flavor = VmFlavor::ALL[*flavor_idx];
                let dapp = DApp::ALL[*dapp_idx];
                let threads = THREADS[*threads_idx];

                let Ok(serial_engine) = ExecutionEngine::with_dapp(flavor, ExecMode::Exact, dapp)
                else {
                    // The paper's own gap (video sharing on the AVM):
                    // nothing deploys, nothing to compare.
                    return Ok(());
                };
                let mut serial_engine = serial_engine;
                let mut parallel_engine =
                    ExecutionEngine::with_dapp(flavor, ExecMode::Exact, dapp)
                        .expect("buildable above")
                        .with_concurrency(Concurrency::Parallel(threads));

                // Mobility on geth has no hard budget, so every call
                // really runs its ~1.4 M instructions; keep those blocks
                // short so the property stays fast.
                let cap = if dapp == DApp::Mobility && flavor == VmFlavor::Geth {
                    4
                } else {
                    txs.len()
                };
                let payloads: Vec<Payload> = txs
                    .iter()
                    .take(cap)
                    .map(|&(seq, selector)| payload_for(dapp, seq, selector))
                    .collect();

                // Feed the block in chunks: state must chain correctly
                // across consecutive committed blocks on both engines.
                for chunk in payloads.chunks(17) {
                    let want = serial_engine.execute_block(chunk);
                    let got = parallel_engine.execute_block(chunk);
                    prop_assert_eq!(
                        want,
                        got,
                        "costs diverged: {:?} on {} at {} threads",
                        dapp,
                        flavor,
                        threads
                    );
                    let s = &serial_engine.contract().expect("deployed").initial_state;
                    let p = &parallel_engine.contract().expect("deployed").initial_state;
                    prop_assert!(
                        s == p,
                        "state diverged: {:?} on {} at {} threads",
                        dapp,
                        flavor,
                        threads
                    );
                }
                Ok(())
            },
        );
}

/// A focused conflict-light stress: large Exchange blocks decompose into
/// five independent components, so this is the configuration where the
/// executor genuinely runs multi-threaded — and where a scheduling bug
/// (lost update, wrong merge order, double-applied delta) would show as
/// a supply-counter mismatch.
#[test]
fn exchange_supply_counters_survive_parallel_commits() {
    Property::new("exchange_supply_counters_survive_parallel_commits")
        .cases(24)
        .check(
            &(usizes(0..=2), vecs(u64s(0..=1_000_000), 32..=160)),
            |(threads_idx, seqs)| {
                let threads = THREADS[*threads_idx];
                let mut engine =
                    ExecutionEngine::with_dapp(VmFlavor::Geth, ExecMode::Exact, DApp::Exchange)
                        .expect("exchange builds on geth")
                        .with_concurrency(Concurrency::Parallel(threads));
                let payloads: Vec<Payload> = seqs
                    .iter()
                    .map(|&seq| Payload::Invoke {
                        dapp: DApp::Exchange,
                        seq,
                        call: None,
                    })
                    .collect();
                let costs = engine.execute_block(&payloads);
                prop_assert!(costs.iter().all(|c| c.ok), "all buys must succeed");
                // Conservation: total tokens bought equals total supply
                // drawn down, per stock.
                let state = &engine.contract().expect("deployed").initial_state;
                for stock in diablo_contracts::exchange::Stock::ALL {
                    let bought = seqs
                        .iter()
                        .filter(|&&seq| (seq % 5) == stock.key() as u64)
                        .count() as i64;
                    prop_assert_eq!(
                        state.load(stock.key()),
                        diablo_contracts::exchange::INITIAL_SUPPLY - bought,
                        "stock {} supply drifted at {} threads",
                        stock.ticker(),
                        threads
                    );
                }
                Ok(())
            },
        );
}
