//! Differential tests for the staged commit pipeline: the state store
//! must report byte-identical roots and persisted state no matter how
//! the blocks were executed (serial, parallel, optimistic; any worker
//! count), which event-queue backend drove the simulation, and which
//! prune mode bounded the resident set.

use diablo_chains::{
    Chain, ChainParams, Concurrency, ExecMode, Experiment, PruneMode, QueueBackend, StorageConfig,
    StorageReport,
};
use diablo_contracts::DApp;
use diablo_net::{DeploymentConfig, DeploymentKind, InstanceType};
use diablo_workloads::traces;

fn exchange_run(
    concurrency: Concurrency,
    queue: QueueBackend,
    storage: Option<StorageConfig>,
) -> diablo_chains::RunResult {
    let mut e = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Testnet,
        traces::constant(50.0, 6),
    )
    .with_dapp(DApp::Exchange)
    .with_exec_mode(ExecMode::Exact)
    .with_concurrency(concurrency)
    .with_queue_backend(queue)
    .with_grace(20);
    if let Some(cfg) = storage {
        e = e.with_storage(cfg);
    }
    e.run()
}

fn small_store() -> StorageConfig {
    StorageConfig {
        prune: PruneMode::Full,
        segment_blocks: 4,
        hot_pages: 2,
    }
}

#[test]
fn storage_report_is_identical_across_executors_and_backends() {
    let reference: StorageReport = exchange_run(
        Concurrency::Serial,
        QueueBackend::Wheel,
        Some(small_store()),
    )
    .storage
    .expect("storage enabled");
    assert_eq!(reference.root_hex.len(), 64);
    assert!(reference.blocks > 0 && reference.txs > 0);

    for queue in [QueueBackend::Wheel, QueueBackend::Heap] {
        for concurrency in [
            Concurrency::Serial,
            Concurrency::Parallel(2),
            Concurrency::Parallel(4),
            Concurrency::Parallel(8),
            Concurrency::Optimistic(2),
            Concurrency::Optimistic(4),
            Concurrency::Optimistic(8),
        ] {
            let report = exchange_run(concurrency, queue, Some(small_store()))
                .storage
                .expect("storage enabled");
            // The whole report — roots, resident byte counts, page
            // states, entry counts — must be bit-identical: the store
            // only ever sees the canonical (serial-equivalent)
            // execution output.
            assert_eq!(report, reference, "{concurrency:?} on {queue:?}");
        }
    }
}

#[test]
fn all_prune_modes_report_the_same_roots() {
    let runs: Vec<(PruneMode, StorageReport)> = [
        PruneMode::Full,
        PruneMode::Distance(3),
        PruneMode::Before(10),
    ]
    .into_iter()
    .map(|prune| {
        let report = exchange_run(
            Concurrency::Serial,
            QueueBackend::Wheel,
            Some(StorageConfig {
                prune,
                segment_blocks: 4,
                hot_pages: 2,
            }),
        )
        .storage
        .expect("storage enabled");
        (prune, report)
    })
    .collect();
    let (_, full) = &runs[0];
    for (prune, report) in &runs[1..] {
        // Pruning drops only persisted history; it never feeds into root
        // computation.
        assert_eq!(report.root_hex, full.root_hex, "{prune}");
        assert_eq!(report.blocks, full.blocks, "{prune}");
        assert_eq!(report.txs, full.txs, "{prune}");
        assert_eq!(report.storage_entries, full.storage_entries, "{prune}");
        assert!(
            report.pruned_blocks > 0,
            "{prune} pruned nothing ({} blocks)",
            report.blocks
        );
        assert!(report.resident_blocks < full.resident_blocks, "{prune}");
    }
    assert_eq!(full.pruned_blocks, 0);
}

#[test]
fn enabling_the_store_does_not_perturb_execution() {
    let without = exchange_run(Concurrency::Serial, QueueBackend::Wheel, None);
    let with = exchange_run(Concurrency::Serial, QueueBackend::Wheel, Some(small_store()));
    assert!(without.storage.is_none());
    assert!(with.storage.is_some());
    // The pipeline observes committed blocks; it must not change a
    // single record or block.
    assert_eq!(without.records.len(), with.records.len());
    for (a, b) in without.records.iter().zip(&with.records) {
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.decided, b.decided);
        assert_eq!(a.status, b.status);
    }
    assert_eq!(without.blocks, with.blocks);
}

#[test]
fn million_account_run_is_bounded_under_distance_pruning() {
    // The acceptance shape: Exchange on RedBelly with a million signing
    // accounts. Under `Distance` pruning the resident state must stay
    // bounded — and still report the exact root of the archive run.
    let run = |prune: PruneMode| {
        let config =
            DeploymentConfig::spread(DeploymentKind::Consortium, 10, InstanceType::C52xlarge);
        let mut params = ChainParams::standard(Chain::RedBelly, &config);
        params.accounts = 1_000_000;
        Experiment::new(
            Chain::RedBelly,
            DeploymentKind::Consortium,
            traces::constant(1_500.0, 4),
        )
        .with_config(config)
        .with_params(params)
        .with_dapp(DApp::Exchange)
        .with_grace(20)
        .with_storage(StorageConfig {
            prune,
            segment_blocks: 4,
            hot_pages: 2,
        })
        .run()
    };
    let full = run(PruneMode::Full).storage.expect("storage enabled");
    let pruned = run(PruneMode::Distance(3)).storage.expect("storage enabled");
    assert!(full.blocks > 8, "need enough blocks to prune: {}", full.blocks);
    assert_eq!(pruned.root_hex, full.root_hex);
    assert_eq!(pruned.storage_entries, full.storage_entries);
    // Residency is bounded by the prune distance (rounded up to whole
    // segments) and the hot-page cap, not by the account count.
    assert!(pruned.pruned_blocks > 0);
    assert!(
        pruned.resident_blocks <= 3 + 2 * 4,
        "resident blocks {} exceed distance + segment slack",
        pruned.resident_blocks
    );
    assert!(pruned.hot_pages <= 2, "hot pages {}", pruned.hot_pages);
    assert!(pruned.resident_bytes < full.resident_bytes);
}
