//! Differential test: the timer-wheel event queue is byte-identical to
//! the reference binary heap on full experiments.
//!
//! The property tests in `diablo-sim` prove the two backends pop the
//! same sequences on random schedule/pop interleavings; this suite
//! closes the loop end to end: complete chain runs — every chain, a
//! DApp workload, and a chaos run with crashes and message loss — must
//! produce identical transaction records and block streams under either
//! backend. Everything downstream of the kernel (mempool order, RNG
//! draws, fee markets, fault injection) consumes event order, so any
//! divergence between the backends shows up here as a diff.

use diablo_chains::{Chain, Experiment, FaultPlan, QueueBackend};
use diablo_contracts::DApp;
use diablo_net::DeploymentKind;
use diablo_sim::SimTime;
use diablo_workloads::traces;

/// Renders everything observable about a run (per-transaction records
/// and the block stream) for exact comparison.
fn fingerprint(experiment: Experiment) -> String {
    let result = experiment.run();
    format!("{:?}\n{:?}\n{}", result.records, result.blocks, result.summary())
}

#[test]
fn wheel_matches_heap_on_every_chain() {
    for chain in Chain::EXTENDED {
        let experiment =
            || Experiment::new(chain, DeploymentKind::Testnet, traces::constant(400.0, 30));
        let wheel = fingerprint(experiment().with_queue_backend(QueueBackend::Wheel));
        let heap = fingerprint(experiment().with_queue_backend(QueueBackend::Heap));
        assert_eq!(wheel, heap, "{chain:?}: queue backends diverged");
    }
}

#[test]
fn wheel_matches_heap_on_a_dapp_workload() {
    let experiment = || {
        Experiment::new(
            Chain::Quorum,
            DeploymentKind::Testnet,
            traces::constant(800.0, 30),
        )
        .with_dapp(DApp::Exchange)
        .with_seed(7)
    };
    let wheel = fingerprint(experiment().with_queue_backend(QueueBackend::Wheel));
    let heap = fingerprint(experiment().with_queue_backend(QueueBackend::Heap));
    assert_eq!(wheel, heap, "Exchange workload: queue backends diverged");
}

#[test]
fn wheel_matches_heap_under_chaos() {
    let t = SimTime::from_secs;
    let faults = FaultPlan::builder()
        .crash_many(2, t(5))
        .recover_many(2, t(15))
        .loss(0.10, t(0), t(25))
        .build();
    let experiment = || {
        Experiment::new(
            Chain::Diem,
            DeploymentKind::Testnet,
            traces::constant(500.0, 30),
        )
        .with_seed(11)
        .with_faults(faults.clone())
    };
    let wheel = fingerprint(experiment().with_queue_backend(QueueBackend::Wheel));
    let heap = fingerprint(experiment().with_queue_backend(QueueBackend::Heap));
    assert_eq!(wheel, heap, "chaos run: queue backends diverged");
}
