//! The Exchange DApp: `ExchangeContractGafam`.
//!
//! A decentralized exchange holding one fungible token per GAFAM stock,
//! each implemented as a single integer counter in limited supply. A
//! `buy*` call checks availability, decrements the counter and emits an
//! event; buying from an empty supply reverts (§3, "checks that this
//! counter is greater than 0").

use diablo_vm::{Asm, ContractState, Op, Program, StateLimits, Word};

/// The five NASDAQ stocks of the GAFAM workload, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stock {
    /// GOOGL.
    Google,
    /// AAPL.
    Apple,
    /// FB.
    Facebook,
    /// AMZN.
    Amazon,
    /// MSFT.
    Microsoft,
}

impl Stock {
    /// All five stocks.
    pub const ALL: [Stock; 5] = [
        Stock::Google,
        Stock::Apple,
        Stock::Facebook,
        Stock::Amazon,
        Stock::Microsoft,
    ];

    /// Storage key of this stock's supply counter.
    pub const fn key(self) -> Word {
        match self {
            Stock::Google => 0,
            Stock::Apple => 1,
            Stock::Facebook => 2,
            Stock::Amazon => 3,
            Stock::Microsoft => 4,
        }
    }

    /// The contract entry point buying one token of this stock.
    pub const fn entry(self) -> &'static str {
        match self {
            Stock::Google => "buyGoogle",
            Stock::Apple => "buyApple",
            Stock::Facebook => "buyFacebook",
            Stock::Amazon => "buyAmazon",
            Stock::Microsoft => "buyMicrosoft",
        }
    }

    /// The ticker symbol.
    pub const fn ticker(self) -> &'static str {
        match self {
            Stock::Google => "GOOGL",
            Stock::Apple => "AAPL",
            Stock::Facebook => "FB",
            Stock::Amazon => "AMZN",
            Stock::Microsoft => "MSFT",
        }
    }
}

/// Initial token supply per stock; large enough that realistic workload
/// runs never deplete it (the paper's experiments measure throughput,
/// not sell-outs).
pub const INITIAL_SUPPLY: Word = 10_000_000;

/// Revert code for "out of stock".
pub const ERR_OUT_OF_STOCK: u16 = 1;

/// Event tag: a successful purchase (args: stock key, remaining supply).
pub const EV_BOUGHT: u16 = 10;

/// Event tag: a stock level report from `checkStock`.
pub const EV_STOCK_LEVEL: u16 = 11;

/// Builds the contract program (identical logic on every flavor).
pub fn program() -> Program {
    let mut asm = Asm::new();

    // checkStock: emits the level of every stock.
    asm.entry("checkStock");
    for stock in Stock::ALL {
        asm.op(Op::Push(stock.key()))
            .op(Op::Push(stock.key()))
            .op(Op::SLoad)
            .op(Op::Emit {
                tag: EV_STOCK_LEVEL,
                arity: 2,
            });
    }
    asm.op(Op::Halt);

    // buy<Stock>: check supply > 0, decrement, emit.
    for stock in Stock::ALL {
        asm.entry(stock.entry());
        let key = stock.key();
        // supply = storage[key]
        asm.op(Op::Push(key)).op(Op::SLoad).op(Op::Store(0));
        // if supply == 0: revert(out of stock)
        let ok = asm.new_label();
        asm.op(Op::Load(0));
        asm.jump_if_not_zero(ok);
        asm.op(Op::Revert(ERR_OUT_OF_STOCK));
        asm.bind(ok);
        // storage[key] = supply - 1
        asm.op(Op::Push(key))
            .op(Op::Load(0))
            .op(Op::Push(1))
            .op(Op::Sub)
            .op(Op::SStore);
        // emit Bought(key, remaining)
        asm.op(Op::Push(key))
            .op(Op::Load(0))
            .op(Op::Push(1))
            .op(Op::Sub)
            .op(Op::Emit {
                tag: EV_BOUGHT,
                arity: 2,
            });
        asm.op(Op::Halt);
    }

    asm.finish()
}

/// The deploy-time state: every stock at [`INITIAL_SUPPLY`].
pub fn initial_state(limits: &StateLimits) -> ContractState {
    let mut state = ContractState::new();
    for stock in Stock::ALL {
        let ok = state.store(stock.key(), INITIAL_SUPPLY, limits);
        assert!(ok, "exchange state must fit every flavor's limits");
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_vm::{ExecError, Interpreter, TxContext, VmFlavor};

    fn deployed() -> (Program, ContractState) {
        (program(), initial_state(&StateLimits::unbounded()))
    }

    #[test]
    fn buy_decrements_and_emits() {
        let (p, mut s) = deployed();
        let vm = Interpreter::new(VmFlavor::Geth);
        let r = vm
            .execute(&p, "buyApple", &TxContext::simple(1, vec![]), &mut s)
            .unwrap();
        assert_eq!(s.load(Stock::Apple.key()), INITIAL_SUPPLY - 1);
        assert_eq!(
            r.events,
            vec![(EV_BOUGHT, vec![Stock::Apple.key(), INITIAL_SUPPLY - 1])]
        );
        // Other stocks untouched.
        assert_eq!(s.load(Stock::Google.key()), INITIAL_SUPPLY);
    }

    #[test]
    fn all_buy_entries_work_on_every_flavor() {
        for flavor in VmFlavor::ALL {
            let p = program();
            let mut s = initial_state(&flavor.state_limits());
            let vm = Interpreter::new(flavor);
            for stock in Stock::ALL {
                vm.execute(&p, stock.entry(), &TxContext::simple(2, vec![]), &mut s)
                    .unwrap_or_else(|e| panic!("{flavor}/{}: {e}", stock.entry()));
            }
            for stock in Stock::ALL {
                assert_eq!(s.load(stock.key()), INITIAL_SUPPLY - 1);
            }
        }
    }

    #[test]
    fn sold_out_reverts_without_state_change() {
        let p = program();
        let mut s = ContractState::new();
        let lim = StateLimits::unbounded();
        s.store(Stock::Google.key(), 1, &lim);
        let vm = Interpreter::new(VmFlavor::Geth);
        // First buy succeeds and exhausts the supply.
        vm.execute(&p, "buyGoogle", &TxContext::simple(1, vec![]), &mut s)
            .unwrap();
        assert_eq!(s.load(Stock::Google.key()), 0);
        // Second buy reverts out-of-stock.
        let err = vm
            .execute(&p, "buyGoogle", &TxContext::simple(1, vec![]), &mut s)
            .unwrap_err();
        assert_eq!(err, ExecError::Reverted(ERR_OUT_OF_STOCK));
        assert_eq!(s.load(Stock::Google.key()), 0);
    }

    #[test]
    fn check_stock_reports_all_levels() {
        let (p, mut s) = deployed();
        let vm = Interpreter::new(VmFlavor::Geth);
        let r = vm
            .execute(&p, "checkStock", &TxContext::simple(1, vec![]), &mut s)
            .unwrap();
        assert_eq!(r.events.len(), 5);
        for (i, (tag, args)) in r.events.iter().enumerate() {
            assert_eq!(*tag, EV_STOCK_LEVEL);
            assert_eq!(args, &vec![Stock::ALL[i].key(), INITIAL_SUPPLY]);
        }
    }

    #[test]
    fn buys_fit_every_hard_budget() {
        // The exchange DApp must run on all four VMs (it appears on all
        // chains in Figure 2).
        for flavor in VmFlavor::ALL {
            let p = program();
            let mut s = initial_state(&flavor.state_limits());
            let r = Interpreter::new(flavor)
                .execute(&p, "buyMicrosoft", &TxContext::simple(1, vec![]), &mut s)
                .unwrap();
            if let Some(budget) = flavor.per_tx_budget() {
                assert!(r.gas_used <= budget);
            }
        }
    }
}
