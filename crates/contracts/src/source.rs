//! The DApps re-expressed in the structured contract language.
//!
//! The shipped DApps are hand-assembled for exact cost control (their
//! instruction counts are calibration-relevant). This module writes the
//! same contracts in `diablo_vm::lang` — the readable "source code" view
//! — and the tests prove the two implementations behave identically.
//! It also demonstrates that the structured language is expressive
//! enough for everything the paper's DApps need: loops, conditionals,
//! storage, events and Newton's integer square root.

use diablo_vm::lang::{Compiler, Expr, Stmt};
use diablo_vm::Program;

use crate::exchange::{Stock, ERR_OUT_OF_STOCK, EV_BOUGHT};
use crate::gaming::{key_x, key_y, EV_MOVED, MAP_SIZE, PLAYERS};
use crate::webservice::{COUNTER_KEY, EV_ADDED};

/// The web-service `Counter` in the structured language.
pub fn webservice_source() -> Program {
    Compiler::new()
        .function(
            "add",
            vec![
                Stmt::Assign(
                    0,
                    Expr::load_state(Expr::lit(COUNTER_KEY)).add(Expr::lit(1)),
                ),
                Stmt::StoreState(Expr::lit(COUNTER_KEY), Expr::local(0)),
                Stmt::Emit(EV_ADDED, vec![Expr::local(0)]),
                Stmt::Stop,
            ],
        )
        .function(
            "get",
            vec![Stmt::Return(Expr::load_state(Expr::lit(COUNTER_KEY)))],
        )
        .compile()
}

/// The `ExchangeContractGafam` buys in the structured language.
pub fn exchange_source() -> Program {
    let mut compiler = Compiler::new();
    // checkStock: emit every stock level.
    let mut body = Vec::new();
    for stock in Stock::ALL {
        body.push(Stmt::Emit(
            crate::exchange::EV_STOCK_LEVEL,
            vec![
                Expr::lit(stock.key()),
                Expr::load_state(Expr::lit(stock.key())),
            ],
        ));
    }
    body.push(Stmt::Stop);
    compiler = compiler.function("checkStock", body);

    for stock in Stock::ALL {
        let key = stock.key();
        compiler = compiler.function(
            stock.entry(),
            vec![
                Stmt::Assign(0, Expr::load_state(Expr::lit(key))),
                Stmt::If(
                    Expr::local(0).eq(Expr::lit(0)),
                    vec![Stmt::Revert(ERR_OUT_OF_STOCK)],
                    vec![
                        Stmt::StoreState(Expr::lit(key), Expr::local(0).sub(Expr::lit(1))),
                        Stmt::Emit(
                            EV_BOUGHT,
                            vec![Expr::lit(key), Expr::local(0).sub(Expr::lit(1))],
                        ),
                        Stmt::Stop,
                    ],
                ),
            ],
        );
    }
    compiler.compile()
}

/// `DecentralizedDota.update(dx, dy)` in the structured language.
///
/// Reflection off the map boundary, written as two `if`s per axis.
pub fn gaming_source() -> Program {
    let mut body = vec![Stmt::Assign(0, Expr::arg(0)), Stmt::Assign(1, Expr::arg(1))];
    for player in 0..PLAYERS {
        // x = storage[key_x] + dx; reflect; store.
        body.push(Stmt::Assign(
            2,
            Expr::load_state(Expr::lit(key_x(player))).add(Expr::local(0)),
        ));
        body.push(Stmt::If(
            Expr::local(2).lt(Expr::lit(0)),
            vec![Stmt::Assign(2, Expr::lit(0).sub(Expr::local(2)))],
            vec![],
        ));
        body.push(Stmt::If(
            Expr::local(2).gt(Expr::lit(MAP_SIZE)),
            vec![Stmt::Assign(2, Expr::lit(2 * MAP_SIZE).sub(Expr::local(2)))],
            vec![],
        ));
        body.push(Stmt::Assign(
            3,
            Expr::load_state(Expr::lit(key_y(player))).add(Expr::local(1)),
        ));
        body.push(Stmt::If(
            Expr::local(3).lt(Expr::lit(0)),
            vec![Stmt::Assign(3, Expr::lit(0).sub(Expr::local(3)))],
            vec![],
        ));
        body.push(Stmt::If(
            Expr::local(3).gt(Expr::lit(MAP_SIZE)),
            vec![Stmt::Assign(3, Expr::lit(2 * MAP_SIZE).sub(Expr::local(3)))],
            vec![],
        ));
        body.push(Stmt::StoreState(Expr::lit(key_x(player)), Expr::local(2)));
        body.push(Stmt::StoreState(Expr::lit(key_y(player)), Expr::local(3)));
        body.push(Stmt::Emit(
            EV_MOVED,
            vec![Expr::lit(player), Expr::local(2), Expr::local(3)],
        ));
    }
    body.push(Stmt::Stop);
    Compiler::new().function("update", body).compile()
}

/// Newton's integer square root as reusable statements: computes
/// `⌊√local[n]⌋` into `local[out]`, as the paper had to write by hand in
/// Solidity, PyTeal and Move.
pub fn isqrt_stmts(n: u8, out: u8) -> Vec<Stmt> {
    let mut stmts = vec![
        // if n < 2 { out = n } else { Newton }
        Stmt::If(
            Expr::local(n).lt(Expr::lit(2)),
            vec![Stmt::Assign(out, Expr::local(n))],
            vec![
                // x = n / 8192 + 1 (the shift-based initial guess).
                Stmt::Assign(out, Expr::local(n).div(Expr::lit(8192)).add(Expr::lit(1))),
            ],
        ),
    ];
    // Fixed Newton iterations (no-ops when n < 2 since x == n <= 1).
    for _ in 0..crate::isqrt::NEWTON_ITERATIONS {
        stmts.push(Stmt::If(
            Expr::local(n).lt(Expr::lit(2)),
            vec![],
            vec![Stmt::Assign(
                out,
                Expr::local(out)
                    .add(Expr::local(n).div(Expr::local(out)))
                    .div(Expr::lit(2)),
            )],
        ));
    }
    // Floor correction.
    for _ in 0..2 {
        stmts.push(Stmt::If(
            Expr::local(out).mul(Expr::local(out)).gt(Expr::local(n)),
            vec![Stmt::Assign(out, Expr::local(out).sub(Expr::lit(1)))],
            vec![],
        ));
    }
    stmts
}

/// A structured-language integer square root entry (used by the tests
/// to cross-check against the hand-assembled emitter).
pub fn isqrt_source() -> Program {
    let mut body = vec![Stmt::Assign(0, Expr::arg(0))];
    body.extend(isqrt_stmts(0, 1));
    body.push(Stmt::Return(Expr::local(1)));
    Compiler::new().function("isqrt", body).compile()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isqrt::isqrt_reference;
    use crate::{exchange, gaming, webservice};
    use diablo_vm::{validate, ContractState, Interpreter, StateLimits, TxContext, VmFlavor, Word};

    fn exec(
        program: &Program,
        entry: &str,
        args: Vec<Word>,
        state: &mut ContractState,
    ) -> Result<diablo_vm::Receipt, diablo_vm::ExecError> {
        Interpreter::new(VmFlavor::Geth).execute(program, entry, &TxContext::simple(1, args), state)
    }

    #[test]
    fn all_sources_validate() {
        for p in [
            webservice_source(),
            exchange_source(),
            gaming_source(),
            isqrt_source(),
        ] {
            assert_eq!(validate(&p), Ok(()));
        }
    }

    #[test]
    fn counter_source_matches_handwritten() {
        let hand = webservice::program();
        let src = webservice_source();
        let mut s1 = ContractState::new();
        let mut s2 = ContractState::new();
        for _ in 0..25 {
            let r1 = exec(&hand, "add", vec![], &mut s1).unwrap();
            let r2 = exec(&src, "add", vec![], &mut s2).unwrap();
            assert_eq!(r1.events, r2.events);
        }
        assert_eq!(s1.load(COUNTER_KEY), s2.load(COUNTER_KEY));
        let g1 = exec(&hand, "get", vec![], &mut s1).unwrap().ret;
        let g2 = exec(&src, "get", vec![], &mut s2).unwrap().ret;
        assert_eq!(g1, g2);
    }

    #[test]
    fn exchange_source_matches_handwritten() {
        let hand = exchange::program();
        let src = exchange_source();
        let lim = StateLimits::unbounded();
        let mut s1 = exchange::initial_state(&lim);
        let mut s2 = exchange::initial_state(&lim);
        for stock in Stock::ALL {
            let r1 = exec(&hand, stock.entry(), vec![], &mut s1).unwrap();
            let r2 = exec(&src, stock.entry(), vec![], &mut s2).unwrap();
            assert_eq!(r1.events, r2.events, "{}", stock.entry());
        }
        // Sold-out behaviour matches too.
        let mut e1 = ContractState::new();
        let mut e2 = ContractState::new();
        let err1 = exec(&hand, "buyApple", vec![], &mut e1).unwrap_err();
        let err2 = exec(&src, "buyApple", vec![], &mut e2).unwrap_err();
        assert_eq!(err1, err2);
    }

    #[test]
    fn gaming_source_matches_handwritten() {
        let hand = gaming::program();
        let src = gaming_source();
        let lim = StateLimits::unbounded();
        let mut s1 = gaming::initial_state(&lim);
        let mut s2 = gaming::initial_state(&lim);
        // A mix of moves, including boundary-reflecting ones.
        for (dx, dy) in [(1, 1), (200, -50), (-300, 260), (7, 7), (-1, -1)] {
            let r1 = exec(&hand, "update", vec![dx, dy], &mut s1).unwrap();
            let r2 = exec(&src, "update", vec![dx, dy], &mut s2).unwrap();
            assert_eq!(r1.events, r2.events, "move ({dx},{dy})");
        }
        for p in 0..PLAYERS {
            assert_eq!(s1.load(key_x(p)), s2.load(key_x(p)));
            assert_eq!(s1.load(key_y(p)), s2.load(key_y(p)));
        }
    }

    #[test]
    fn isqrt_source_is_exact_on_the_mobility_domain() {
        let p = isqrt_source();
        for n in [
            0,
            1,
            2,
            3,
            4,
            99,
            100,
            10_000,
            123_456,
            199_999_999,
            200_000_000,
        ] {
            let mut s = ContractState::new();
            let got = exec(&p, "isqrt", vec![n], &mut s).unwrap().ret.unwrap();
            assert_eq!(got, isqrt_reference(n), "n = {n}");
        }
    }

    mod property {
        use super::*;
        use diablo_testkit::gen::i64s;
        use diablo_testkit::{prop_assert_eq, Property};

        /// The structured-language isqrt equals the oracle over the
        /// Mobility domain, like the hand-assembled one.
        #[test]
        fn lang_isqrt_matches_oracle() {
            Property::new("lang_isqrt_matches_oracle").check(&i64s(0..=200_000_000), |&n| {
                let p = isqrt_source();
                let mut s = ContractState::new();
                let got = Interpreter::new(VmFlavor::Geth)
                    .execute(&p, "isqrt", &TxContext::simple(1, vec![n]), &mut s)
                    .unwrap()
                    .ret
                    .unwrap();
                prop_assert_eq!(got, isqrt_reference(n));
                Ok(())
            });
        }
    }
}
