//! The Mobility-service DApp: `ContractUber`.
//!
//! `checkDistance(cx, cy)` matches a customer at `(cx, cy)` with the
//! closest of 10,000 drivers on a 10,000 × 10,000 grid by computing
//! 10,000 Euclidean distances, each through Newton's integer square root
//! (§3). This DApp is the paper's *universality* probe (§6.4, Fig. 5):
//! it executes fine on geth (no hard per-transaction budget) and dies
//! with "budget exceeded" on the AVM, MoveVM and eBPF.
//!
//! Flavor lowering follows the paper's sources:
//! - **geth / MoveVM / eBPF**: driver positions are derived from the
//!   driver index with a linear-congruential hash (the Solidity and Move
//!   contracts avoid 10,000 storage slots the same way);
//! - **AVM**: "the PyTeal implementation of ContractUber only stores the
//!   position of one driver and computes the Euclidean distance to this
//!   unique driver 10,000 times" — same op count, one storage read.

use diablo_vm::{Asm, ContractState, Op, Program, StateLimits, VmFlavor, Word};

use crate::isqrt::emit_isqrt;

/// Number of drivers examined per call.
pub const DRIVERS: Word = 10_000;

/// The area is `GRID × GRID`.
pub const GRID: Word = 10_000;

/// Event tag: a driver was matched (args: driver id, distance).
pub const EV_MATCHED: u16 = 40;

/// Storage keys of the single stored driver in the AVM variant.
pub const AVM_DRIVER_X_KEY: Word = 0;
/// Storage key of the stored driver's y coordinate (AVM variant).
pub const AVM_DRIVER_Y_KEY: Word = 1;

/// Locals: 0 = cx, 1 = cy, 2 = i, 3 = best distance, 4 = best driver,
/// 5 = driver x, 6 = driver y, 7 = squared distance, 8 = isqrt result.
const L_CX: u8 = 0;
const L_CY: u8 = 1;
const L_I: u8 = 2;
const L_BEST_D: u8 = 3;
const L_BEST_I: u8 = 4;
const L_DX: u8 = 5;
const L_DY: u8 = 6;
const L_D2: u8 = 7;
const L_DIST: u8 = 8;

/// Deterministic driver position (x) for driver `i` (mirrors the code
/// emitted by [`program`] for non-AVM flavors).
pub fn driver_x(i: Word) -> Word {
    (i * 1_103_515_245 + 12_345).rem_euclid(GRID)
}

/// Deterministic driver position (y) for driver `i`.
pub fn driver_y(i: Word) -> Word {
    (i * 214_013 + 2_531_011).rem_euclid(GRID)
}

/// Builds the contract program for `flavor`.
pub fn program(flavor: VmFlavor) -> Program {
    let mut asm = Asm::new();
    asm.entry("checkDistance");
    asm.op(Op::Arg(0)).op(Op::Store(L_CX));
    asm.op(Op::Arg(1)).op(Op::Store(L_CY));
    asm.op(Op::Push(0)).op(Op::Store(L_I));
    asm.op(Op::Push(Word::MAX)).op(Op::Store(L_BEST_D));
    asm.op(Op::Push(0)).op(Op::Store(L_BEST_I));

    if flavor == VmFlavor::Avm {
        // One stored driver, loaded once before the loop.
        asm.op(Op::Push(AVM_DRIVER_X_KEY))
            .op(Op::SLoad)
            .op(Op::Store(L_DX));
        asm.op(Op::Push(AVM_DRIVER_Y_KEY))
            .op(Op::SLoad)
            .op(Op::Store(L_DY));
    }

    let top = asm.here();
    let done = asm.new_label();
    // while i < DRIVERS
    asm.op(Op::Load(L_I)).op(Op::Push(DRIVERS)).op(Op::Lt);
    asm.jump_if_zero(done);

    if flavor != VmFlavor::Avm {
        // dx = (i * 1103515245 + 12345) % GRID
        asm.op(Op::Load(L_I))
            .op(Op::Push(1_103_515_245))
            .op(Op::Mul)
            .op(Op::Push(12_345))
            .op(Op::Add)
            .op(Op::Push(GRID))
            .op(Op::Mod)
            .op(Op::Store(L_DX));
        // dy = (i * 214013 + 2531011) % GRID
        asm.op(Op::Load(L_I))
            .op(Op::Push(214_013))
            .op(Op::Mul)
            .op(Op::Push(2_531_011))
            .op(Op::Add)
            .op(Op::Push(GRID))
            .op(Op::Mod)
            .op(Op::Store(L_DY));
    }

    // d2 = (cx - dx)² + (cy - dy)²
    asm.op(Op::Load(L_CX))
        .op(Op::Load(L_DX))
        .op(Op::Sub)
        .op(Op::Store(L_D2));
    asm.op(Op::Load(L_D2))
        .op(Op::Load(L_D2))
        .op(Op::Mul)
        .op(Op::Store(L_D2));
    asm.op(Op::Load(L_CY))
        .op(Op::Load(L_DY))
        .op(Op::Sub)
        .op(Op::Store(L_DIST));
    asm.op(Op::Load(L_DIST))
        .op(Op::Load(L_DIST))
        .op(Op::Mul)
        .op(Op::Load(L_D2))
        .op(Op::Add)
        .op(Op::Store(L_D2));

    // dist = isqrt(d2) — the Euclidean distance (Newton's method; no
    // floating point, no built-in √ on any of the three languages).
    emit_isqrt(&mut asm, L_D2, L_DIST);

    // if dist < best { best = dist; best_i = i }
    let not_better = asm.new_label();
    asm.op(Op::Load(L_DIST)).op(Op::Load(L_BEST_D)).op(Op::Lt);
    asm.jump_if_zero(not_better);
    asm.op(Op::Load(L_DIST)).op(Op::Store(L_BEST_D));
    asm.op(Op::Load(L_I)).op(Op::Store(L_BEST_I));
    asm.bind(not_better);

    // i += 1; loop
    asm.op(Op::Load(L_I))
        .op(Op::Push(1))
        .op(Op::Add)
        .op(Op::Store(L_I));
    asm.jump(top);

    asm.bind(done);
    // emit Matched(best_i, best_d); return best_i
    asm.op(Op::Load(L_BEST_I))
        .op(Op::Load(L_BEST_D))
        .op(Op::Emit {
            tag: EV_MATCHED,
            arity: 2,
        });
    asm.op(Op::Load(L_BEST_I)).op(Op::Halt);
    asm.finish()
}

/// Deploy-time state. Only the AVM variant stores anything (its single
/// driver, parked mid-grid).
pub fn initial_state(flavor: VmFlavor, limits: &StateLimits) -> ContractState {
    let mut state = ContractState::new();
    if flavor == VmFlavor::Avm {
        assert!(state.store(AVM_DRIVER_X_KEY, GRID / 2, limits));
        assert!(state.store(AVM_DRIVER_Y_KEY, GRID / 2, limits));
    }
    state
}

/// Reference implementation of the matching logic (used by tests).
pub fn reference_match(cx: Word, cy: Word) -> (Word, Word) {
    let mut best = (0, Word::MAX);
    for i in 0..DRIVERS {
        let dx = cx - driver_x(i);
        let dy = cy - driver_y(i);
        let dist = crate::isqrt::isqrt_reference(dx * dx + dy * dy);
        if dist < best.1 {
            best = (i, dist);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_vm::{Interpreter, TxContext, VmFlavor};

    #[test]
    fn geth_matches_reference() {
        let p = program(VmFlavor::Geth);
        let mut s = initial_state(VmFlavor::Geth, &StateLimits::unbounded());
        let r = Interpreter::new(VmFlavor::Geth)
            .execute(
                &p,
                "checkDistance",
                &TxContext::simple(1, vec![4000, 7000]),
                &mut s,
            )
            .unwrap();
        let (best_i, best_d) = reference_match(4000, 7000);
        assert_eq!(r.ret, Some(best_i));
        assert_eq!(r.events, vec![(EV_MATCHED, vec![best_i, best_d])]);
    }

    #[test]
    fn geth_execution_is_heavy() {
        // The whole point of the DApp: ~10,000 loop iterations make it
        // CPU-intensive (paper §3: "computation intensive").
        let p = program(VmFlavor::Geth);
        let mut s = initial_state(VmFlavor::Geth, &StateLimits::unbounded());
        let r = Interpreter::new(VmFlavor::Geth)
            .execute(
                &p,
                "checkDistance",
                &TxContext::simple(1, vec![1, 1]),
                &mut s,
            )
            .unwrap();
        assert!(r.ops_executed > 500_000, "only {} ops", r.ops_executed);
        assert!(r.gas_used > 1_000_000, "only {} gas", r.gas_used);
    }

    #[test]
    fn hard_budget_flavors_report_budget_exceeded() {
        // §6.4: "Algorand, Diem and Solana are unable to execute the DApp
        // because the client reports an error of type budget exceeded".
        for flavor in [VmFlavor::Avm, VmFlavor::MoveVm, VmFlavor::Ebpf] {
            let p = program(flavor);
            let mut s = initial_state(flavor, &flavor.state_limits());
            let err = Interpreter::new(flavor)
                .execute(
                    &p,
                    "checkDistance",
                    &TxContext::simple(1, vec![5, 5]),
                    &mut s,
                )
                .unwrap_err();
            assert!(
                err.is_hard_budget(),
                "{flavor}: expected budget exceeded, got {err}"
            );
        }
    }

    #[test]
    fn driver_positions_cover_the_grid() {
        let mut xs: Vec<Word> = (0..DRIVERS).map(driver_x).collect();
        xs.sort_unstable();
        xs.dedup();
        assert!(xs.len() > 1000, "driver x positions look degenerate");
        for i in 0..DRIVERS {
            assert!((0..GRID).contains(&driver_x(i)));
            assert!((0..GRID).contains(&driver_y(i)));
        }
    }

    #[test]
    fn customer_on_top_of_a_driver_matches_at_distance_zero() {
        let i = 1234;
        let (cx, cy) = (driver_x(i), driver_y(i));
        let (_, best_d) = reference_match(cx, cy);
        assert_eq!(best_d, 0);
    }
}
