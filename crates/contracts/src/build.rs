//! Per-flavor contract builds.
//!
//! [`build`] lowers a [`DApp`] for a [`VmFlavor`], yielding either a
//! deployable [`Contract`] or an [`Unsupported`] explaining why the pair
//! does not exist — the machine-readable version of the paper's §5.2
//! notes ("we could not implement the video sharing DApp in Teal…").

use core::fmt;

use diablo_vm::{
    prepare, ContractState, EntryId, Interpreter, PreparedProgram, Program, TxContext, VmFlavor,
};

use crate::{exchange, gaming, mobility, videosharing, webservice, DApp};

/// A DApp lowered for one VM flavor, ready to deploy.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Which DApp this is.
    pub dapp: DApp,
    /// The flavor it was lowered for.
    pub flavor: VmFlavor,
    /// The executable program.
    pub program: Program,
    /// The program lowered once for this flavor (jump targets verified,
    /// basic-block gas folded) — the fast path every per-transaction
    /// execution should take.
    pub prepared: PreparedProgram,
    /// The deploy-time state.
    pub initial_state: ContractState,
}

/// Why a DApp cannot be built for a flavor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported {
    /// The DApp that was requested.
    pub dapp: DApp,
    /// The flavor that rejects it.
    pub flavor: VmFlavor,
    /// Human-readable explanation (quotes the paper where applicable).
    pub reason: String,
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cannot be built for {}: {}",
            self.dapp, self.flavor, self.reason
        )
    }
}

impl std::error::Error for Unsupported {}

/// Lowers `dapp` for `flavor`.
pub fn build(dapp: DApp, flavor: VmFlavor) -> Result<Contract, Unsupported> {
    let limits = flavor.state_limits();
    let (program, initial_state) = match dapp {
        DApp::Exchange => (exchange::program(), exchange::initial_state(&limits)),
        DApp::Gaming => (gaming::program(), gaming::initial_state(&limits)),
        DApp::WebService => (webservice::program(), webservice::initial_state(&limits)),
        DApp::Mobility => (
            mobility::program(flavor),
            mobility::initial_state(flavor, &limits),
        ),
        DApp::VideoSharing => {
            if flavor == VmFlavor::Avm {
                return Err(Unsupported {
                    dapp,
                    flavor,
                    reason: "video data structures are too large for the AVM state, \
                             which is limited to a key-value store with 128 bytes per \
                             key-value pair"
                        .to_string(),
                });
            }
            (
                videosharing::program(),
                videosharing::initial_state(&limits),
            )
        }
    };
    // Every lowered program must pass static validation (all jumps in
    // range, every path from every entry terminated, locals in range);
    // preparation runs it and then folds the flavor's gas schedule into
    // basic blocks, so each deployed contract carries its fast-path
    // representation from day one.
    let prepared =
        prepare(&program, flavor).unwrap_or_else(|e| panic!("{dapp}/{flavor} failed validation: {e}"));
    Ok(Contract {
        dapp,
        flavor,
        program,
        prepared,
        initial_state,
    })
}

impl Contract {
    /// The entry point a workload transaction of this DApp invokes.
    pub fn default_entry(&self) -> &'static str {
        crate::calls::default_entry(self.dapp)
    }

    /// Resolves an entry-point name against the prepared program
    /// (binary search over interned names — no hashing per call).
    pub fn entry_id(&self, name: &str) -> Option<EntryId> {
        self.prepared.entry_id(name)
    }

    /// Dry-runs one representative call and classifies the DApp as
    /// runnable or not on this flavor. Returns the execution receipt or
    /// the error (e.g. `BudgetExceeded` for Mobility on AVM/MoveVM/eBPF).
    pub fn probe(&self) -> Result<diablo_vm::Receipt, diablo_vm::ExecError> {
        let call = crate::calls::call_for(self.dapp, 0);
        let ctx = TxContext {
            caller: 1,
            args: call.args,
            payload_bytes: call.payload_bytes,
            gas_limit: u64::MAX,
        };
        let Some(entry) = self.entry_id(call.entry) else {
            return Err(diablo_vm::ExecError::UnknownEntry {
                name: call.entry.to_string(),
            });
        };
        Interpreter::new(self.flavor).dry_run_prepared(&self.prepared, entry, &ctx, &self.initial_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_build_except_youtube_on_avm() {
        for dapp in DApp::ALL {
            for flavor in VmFlavor::ALL {
                let result = build(dapp, flavor);
                if dapp == DApp::VideoSharing && flavor == VmFlavor::Avm {
                    let err = result.expect_err("youtube/AVM must be unsupported");
                    assert!(err.reason.contains("128 bytes"));
                } else {
                    result.unwrap_or_else(|e| panic!("{dapp}/{flavor}: {e}"));
                }
            }
        }
    }

    #[test]
    fn probe_classifies_mobility_like_figure5() {
        // Fig. 5: geth executes the Mobility DApp; AVM, MoveVM and eBPF
        // report "budget exceeded".
        let ok = build(DApp::Mobility, VmFlavor::Geth).unwrap().probe();
        assert!(ok.is_ok(), "geth must run mobility: {ok:?}");
        for flavor in [VmFlavor::Avm, VmFlavor::MoveVm, VmFlavor::Ebpf] {
            let err = build(DApp::Mobility, flavor).unwrap().probe().unwrap_err();
            assert!(err.is_hard_budget(), "{flavor}: {err}");
        }
    }

    #[test]
    fn every_lowered_program_validates_statically() {
        for dapp in DApp::ALL {
            for flavor in VmFlavor::ALL {
                if let Ok(c) = build(dapp, flavor) {
                    assert_eq!(diablo_vm::validate(&c.program), Ok(()), "{dapp}/{flavor}");
                }
            }
        }
    }

    #[test]
    fn prepared_program_interns_every_entry() {
        for dapp in DApp::ALL {
            for flavor in VmFlavor::ALL {
                if let Ok(c) = build(dapp, flavor) {
                    for name in c.program.entry_names() {
                        assert!(c.entry_id(name).is_some(), "{dapp}/{flavor}: {name}");
                    }
                    assert!(c.entry_id("no_such_entry").is_none());
                }
            }
        }
    }

    #[test]
    fn prepared_probe_matches_unprepared_dry_run() {
        // The probe runs through the prepared fast path; it must agree
        // exactly with the unprepared interpreter on every buildable
        // pair — including the hard-budget failures of Figure 5.
        for dapp in DApp::ALL {
            for flavor in VmFlavor::ALL {
                let Ok(c) = build(dapp, flavor) else { continue };
                let call = crate::calls::call_for(dapp, 0);
                let ctx = TxContext {
                    caller: 1,
                    args: call.args,
                    payload_bytes: call.payload_bytes,
                    gas_limit: u64::MAX,
                };
                let baseline = Interpreter::new(flavor).dry_run(
                    &c.program,
                    call.entry,
                    &ctx,
                    &c.initial_state,
                );
                assert_eq!(c.probe(), baseline, "{dapp}/{flavor}");
            }
        }
    }

    #[test]
    fn disassembly_shows_the_paper_entry_points() {
        let c = build(DApp::Mobility, VmFlavor::Geth).unwrap();
        let text = diablo_vm::disassemble(&c.program);
        assert!(
            text.contains("checkDistance:"),
            "{}",
            &text[..200.min(text.len())]
        );
        let c = build(DApp::Exchange, VmFlavor::Geth).unwrap();
        let text = diablo_vm::disassemble(&c.program);
        for entry in ["checkStock:", "buyGoogle:", "buyApple:"] {
            assert!(text.contains(entry));
        }
    }

    #[test]
    fn probe_passes_light_dapps_everywhere() {
        for dapp in [DApp::Exchange, DApp::Gaming, DApp::WebService] {
            for flavor in VmFlavor::ALL {
                let receipt = build(dapp, flavor).unwrap().probe();
                assert!(receipt.is_ok(), "{dapp}/{flavor}: {receipt:?}");
            }
        }
    }
}
