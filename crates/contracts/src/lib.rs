//! The five decentralized applications of the paper's §3, implemented as
//! real programs for the `diablo-vm` virtual machine.
//!
//! | DApp          | Contract                 | Trace    | Behaviour |
//! |---------------|--------------------------|----------|-----------|
//! | Exchange      | `ExchangeContractGafam`  | NASDAQ   | fungible-token counters, one per GAFAM stock |
//! | Gaming        | `DecentralizedDota`      | Dota 2   | moves 10 players on a 250×250 map with reflection |
//! | Web service   | `Counter`                | FIFA '98 | a highly contended counter |
//! | Mobility      | `ContractUber`           | Uber NYC | 10,000 Euclidean distances with Newton's integer √ |
//! | Video sharing | `DecentralizedYoutube`   | YouTube  | stores uploaded payloads, assigns the requester |
//!
//! Each DApp is *lowered* per VM flavor, mirroring the paper's Solidity /
//! PyTeal / Move sources: the AVM build of the Mobility DApp stores a
//! single driver and measures the distance to it 10,000 times (the
//! paper's PyTeal workaround for the key-value state model), and the AVM
//! build of the video-sharing DApp does not exist at all (state entries
//! are limited to 128 bytes), exactly as reported in §5.2.

#![warn(missing_docs)]

pub mod build;
pub mod calls;
pub mod exchange;
pub mod gaming;
pub mod isqrt;
pub mod mobility;
pub mod source;
pub mod videosharing;
pub mod webservice;

pub use build::{build, Contract, Unsupported};
pub use calls::CallSpec;

use core::fmt;

/// One of the paper's five decentralized applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DApp {
    /// Decentralized exchange driven by the NASDAQ GAFAM trace.
    Exchange,
    /// Multiplayer game driven by the Dota 2 trace.
    Gaming,
    /// Decentralized web service driven by the FIFA '98 trace.
    WebService,
    /// Mobility service driven by the Uber trace (compute-intensive).
    Mobility,
    /// Video sharing driven by the YouTube trace (payload-heavy).
    VideoSharing,
}

impl DApp {
    /// All five DApps, in the paper's presentation order.
    pub const ALL: [DApp; 5] = [
        DApp::Exchange,
        DApp::Gaming,
        DApp::WebService,
        DApp::Mobility,
        DApp::VideoSharing,
    ];

    /// The short benchmark name.
    pub const fn name(self) -> &'static str {
        match self {
            DApp::Exchange => "exchange",
            DApp::Gaming => "gaming",
            DApp::WebService => "webservice",
            DApp::Mobility => "mobility",
            DApp::VideoSharing => "videosharing",
        }
    }

    /// The smart-contract name used in the paper.
    pub const fn contract_name(self) -> &'static str {
        match self {
            DApp::Exchange => "ExchangeContractGafam",
            DApp::Gaming => "DecentralizedDota",
            DApp::WebService => "Counter",
            DApp::Mobility => "ContractUber",
            DApp::VideoSharing => "DecentralizedYoutube",
        }
    }

    /// The real-application trace the DApp replays (Table 2).
    pub const fn workload_name(self) -> &'static str {
        match self {
            DApp::Exchange => "NASDAQ",
            DApp::Gaming => "Dota 2",
            DApp::WebService => "FIFA",
            DApp::Mobility => "Uber",
            DApp::VideoSharing => "YouTube",
        }
    }

    /// Parses a DApp from its short name, contract name or trace alias.
    pub fn parse(s: &str) -> Option<DApp> {
        let s = s.trim();
        // The paper's workload specification uses "dota" for the gaming
        // DApp; accept the trace names too.
        let aliases: &[(&str, DApp)] = &[
            ("dota", DApp::Gaming),
            ("fifa", DApp::WebService),
            ("uber", DApp::Mobility),
            ("youtube", DApp::VideoSharing),
            ("nasdaq", DApp::Exchange),
        ];
        DApp::ALL
            .iter()
            .copied()
            .find(|d| d.name().eq_ignore_ascii_case(s) || d.contract_name() == s)
            .or_else(|| {
                aliases
                    .iter()
                    .find(|(a, _)| a.eq_ignore_ascii_case(s))
                    .map(|&(_, d)| d)
            })
    }
}

impl fmt::Display for DApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for d in DApp::ALL {
            assert_eq!(DApp::parse(d.name()), Some(d));
            assert_eq!(DApp::parse(d.contract_name()), Some(d));
        }
    }

    #[test]
    fn paper_aliases_parse() {
        assert_eq!(DApp::parse("dota"), Some(DApp::Gaming));
        assert_eq!(DApp::parse("uber"), Some(DApp::Mobility));
        assert_eq!(DApp::parse("nope"), None);
    }

    #[test]
    fn contract_names_match_paper() {
        assert_eq!(DApp::Exchange.contract_name(), "ExchangeContractGafam");
        assert_eq!(DApp::Gaming.contract_name(), "DecentralizedDota");
        assert_eq!(DApp::Mobility.contract_name(), "ContractUber");
        assert_eq!(DApp::VideoSharing.contract_name(), "DecentralizedYoutube");
    }
}
