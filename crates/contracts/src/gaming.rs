//! The Gaming DApp: `DecentralizedDota`.
//!
//! The `update` function moves the positions of 10 players along the
//! x-axis and y-axis of a 250×250 map "so that they turn back whenever
//! they reach the limit of the map" (§3). Turning back is implemented by
//! reflecting the position off the map boundary, which keeps every
//! coordinate in `[0, MAP_SIZE]` without persistent direction state.

use diablo_vm::{Asm, ContractState, Op, Program, StateLimits, Word};

/// Number of players moved per update (two teams of five).
pub const PLAYERS: Word = 10;

/// The map is `MAP_SIZE × MAP_SIZE`.
pub const MAP_SIZE: Word = 250;

/// Event tag: one player moved (args: player, x, y).
pub const EV_MOVED: u16 = 20;

/// Storage key of player `i`'s x coordinate.
pub const fn key_x(player: Word) -> Word {
    player * 2
}

/// Storage key of player `i`'s y coordinate.
pub const fn key_y(player: Word) -> Word {
    player * 2 + 1
}

/// Emits code that reflects the value in `local` into `[0, MAP_SIZE]`.
///
/// `v < 0 → -v`; `v > MAP_SIZE → 2·MAP_SIZE - v`. A single reflection
/// suffices because update steps are small compared to the map.
fn emit_reflect(asm: &mut Asm, local: u8) {
    // if v < 0 { v = -v }
    let non_neg = asm.new_label();
    asm.op(Op::Load(local)).op(Op::Push(0)).op(Op::Lt);
    asm.jump_if_zero(non_neg);
    asm.op(Op::Load(local)).op(Op::Neg).op(Op::Store(local));
    asm.bind(non_neg);
    // if v > MAP_SIZE { v = 2 * MAP_SIZE - v }
    let in_range = asm.new_label();
    asm.op(Op::Load(local)).op(Op::Push(MAP_SIZE)).op(Op::Gt);
    asm.jump_if_zero(in_range);
    asm.op(Op::Push(2 * MAP_SIZE))
        .op(Op::Load(local))
        .op(Op::Sub)
        .op(Op::Store(local));
    asm.bind(in_range);
}

/// Builds the contract program (identical logic on every flavor).
///
/// `update(dx, dy)` moves every player by `(dx, dy)` with reflection at
/// the boundaries and emits one event per player.
pub fn program() -> Program {
    let mut asm = Asm::new();
    asm.entry("update");
    // Locals: 0 = dx, 1 = dy, 2 = x, 3 = y.
    asm.op(Op::Arg(0)).op(Op::Store(0));
    asm.op(Op::Arg(1)).op(Op::Store(1));
    for player in 0..PLAYERS {
        // x = reflect(storage[key_x] + dx)
        asm.op(Op::Push(key_x(player)))
            .op(Op::SLoad)
            .op(Op::Load(0))
            .op(Op::Add)
            .op(Op::Store(2));
        emit_reflect(&mut asm, 2);
        // y = reflect(storage[key_y] + dy)
        asm.op(Op::Push(key_y(player)))
            .op(Op::SLoad)
            .op(Op::Load(1))
            .op(Op::Add)
            .op(Op::Store(3));
        emit_reflect(&mut asm, 3);
        // Store back and emit Moved(player, x, y).
        asm.op(Op::Push(key_x(player)))
            .op(Op::Load(2))
            .op(Op::SStore);
        asm.op(Op::Push(key_y(player)))
            .op(Op::Load(3))
            .op(Op::SStore);
        asm.op(Op::Push(player))
            .op(Op::Load(2))
            .op(Op::Load(3))
            .op(Op::Emit {
                tag: EV_MOVED,
                arity: 3,
            });
    }
    asm.op(Op::Halt);
    asm.finish()
}

/// Deploy-time state: players scattered over the map.
pub fn initial_state(limits: &StateLimits) -> ContractState {
    let mut state = ContractState::new();
    for player in 0..PLAYERS {
        let x = (player * 53) % (MAP_SIZE + 1);
        let y = (player * 97) % (MAP_SIZE + 1);
        assert!(
            state.store(key_x(player), x, limits),
            "gaming state must fit"
        );
        assert!(
            state.store(key_y(player), y, limits),
            "gaming state must fit"
        );
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_vm::{Interpreter, TxContext, VmFlavor};

    fn update(s: &mut ContractState, dx: Word, dy: Word) {
        let p = program();
        Interpreter::new(VmFlavor::Geth)
            .execute(&p, "update", &TxContext::simple(1, vec![dx, dy]), s)
            .unwrap();
    }

    #[test]
    fn update_moves_every_player() {
        let mut s = initial_state(&StateLimits::unbounded());
        let before: Vec<(Word, Word)> = (0..PLAYERS)
            .map(|p| (s.load(key_x(p)), s.load(key_y(p))))
            .collect();
        update(&mut s, 1, 1);
        for (p, (bx, by)) in before.iter().enumerate() {
            let p = p as Word;
            assert_eq!(s.load(key_x(p)), bx + 1);
            assert_eq!(s.load(key_y(p)), by + 1);
        }
    }

    #[test]
    fn players_turn_back_at_the_map_limit() {
        let mut s = ContractState::new();
        let lim = StateLimits::unbounded();
        // Put player 0 at the top-right corner; everyone else at origin.
        s.store(key_x(0), MAP_SIZE, &lim);
        s.store(key_y(0), MAP_SIZE, &lim);
        update(&mut s, 10, 3);
        // Reflected: 250 + 10 → 240; 250 + 3 → 247.
        assert_eq!(s.load(key_x(0)), MAP_SIZE - 10);
        assert_eq!(s.load(key_y(0)), MAP_SIZE - 3);
    }

    #[test]
    fn players_reflect_off_zero() {
        let mut s = ContractState::new();
        update(&mut s, -7, -2);
        // All players start at 0 in an empty state; -7 reflects to 7.
        assert_eq!(s.load(key_x(0)), 7);
        assert_eq!(s.load(key_y(0)), 2);
    }

    #[test]
    fn positions_stay_on_the_map_under_many_updates() {
        let mut s = initial_state(&StateLimits::unbounded());
        for step in 0..200 {
            let dx = if step % 2 == 0 { 9 } else { -13 };
            let dy = if step % 3 == 0 { -11 } else { 7 };
            update(&mut s, dx, dy);
            for p in 0..PLAYERS {
                let x = s.load(key_x(p));
                let y = s.load(key_y(p));
                assert!(
                    (0..=MAP_SIZE).contains(&x),
                    "x = {x} off map at step {step}"
                );
                assert!(
                    (0..=MAP_SIZE).contains(&y),
                    "y = {y} off map at step {step}"
                );
            }
        }
    }

    #[test]
    fn emits_one_event_per_player() {
        let p = program();
        let mut s = initial_state(&StateLimits::unbounded());
        let r = Interpreter::new(VmFlavor::Geth)
            .execute(&p, "update", &TxContext::simple(1, vec![1, 1]), &mut s)
            .unwrap();
        assert_eq!(r.events.len(), PLAYERS as usize);
        assert!(r
            .events
            .iter()
            .all(|(tag, args)| *tag == EV_MOVED && args.len() == 3));
    }

    #[test]
    fn runs_within_every_hard_budget() {
        // The gaming DApp appears for every chain in Figure 2, so it must
        // fit the AVM 700-op budget, the MoveVM cap and the eBPF cap.
        for flavor in VmFlavor::ALL {
            let p = program();
            let mut s = initial_state(&flavor.state_limits());
            let r = Interpreter::new(flavor)
                .execute(&p, "update", &TxContext::simple(1, vec![1, 1]), &mut s)
                .unwrap_or_else(|e| panic!("{flavor}: {e}"));
            if let Some(budget) = flavor.per_tx_budget() {
                assert!(r.gas_used <= budget, "{flavor}: {} > {budget}", r.gas_used);
            }
        }
    }
}
