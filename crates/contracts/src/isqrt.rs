//! Newton's integer square root, emitted as VM code.
//!
//! Neither PyTeal nor Move support floating point or a built-in √, so
//! the paper implements Newton's integer square root in all three
//! contract languages for the Mobility DApp. We do the same at the
//! bytecode level: [`emit_isqrt`] inlines the iteration
//! `x ← (x + n/x) / 2` with a shift-based initial guess and a final
//! floor correction. The emitted code is exact (`⌊√n⌋`) for the whole
//! Mobility domain — distances squared on a 10,000 × 10,000 grid — which
//! a property test verifies against the floating-point oracle.

use diablo_vm::{Asm, Op, Word};

/// Number of Newton iterations emitted.
///
/// With the `x₀ = (n >> 13) + 1` initial guess, ten iterations converge
/// for every `n` in `[0, 2 · 10⁸]`, the largest squared distance the
/// Mobility DApp can produce (proved by the exhaustive-domain property
/// test in this module).
pub const NEWTON_ITERATIONS: usize = 10;

/// Emits code computing `⌊√n⌋` where `n` is read from local register
/// `n_local`; the result is left in local register `out_local`.
///
/// Clobbers `out_local` only. Values must be non-negative (the callers
/// square their inputs first).
pub fn emit_isqrt(asm: &mut Asm, n_local: u8, out_local: u8) {
    let x = out_local;
    let done = asm.new_label();

    // if n < 2 { out = n; done }  (⌊√0⌋ = 0, ⌊√1⌋ = 1)
    asm.op(Op::Load(n_local)).op(Op::Store(x));
    asm.op(Op::Load(n_local)).op(Op::Push(2)).op(Op::Lt);
    asm.jump_if_not_zero(done);

    // x = (n >> 13) + 1 — a guess within ~2× of √n for the DApp domain.
    asm.op(Op::Load(n_local))
        .op(Op::Shr(13))
        .op(Op::Push(1))
        .op(Op::Add)
        .op(Op::Store(x));

    // Fixed-count Newton iterations: x = (x + n / x) / 2.
    for _ in 0..NEWTON_ITERATIONS {
        asm.op(Op::Load(x))
            .op(Op::Load(n_local))
            .op(Op::Load(x))
            .op(Op::Div)
            .op(Op::Add)
            .op(Op::Shr(1))
            .op(Op::Store(x));
    }

    // Floor correction: while x * x > n { x -= 1 } — at most two steps
    // are ever needed after the iterations above.
    for _ in 0..2 {
        let skip = asm.new_label();
        asm.op(Op::Load(x))
            .op(Op::Load(x))
            .op(Op::Mul)
            .op(Op::Load(n_local))
            .op(Op::Gt);
        asm.jump_if_zero(skip);
        asm.op(Op::Load(x))
            .op(Op::Push(1))
            .op(Op::Sub)
            .op(Op::Store(x));
        asm.bind(skip);
    }

    asm.bind(done);
}

/// Reference integer square root used by tests and by analytic cost
/// accounting: `⌊√n⌋` for `n ≥ 0`.
pub fn isqrt_reference(n: Word) -> Word {
    assert!(n >= 0, "isqrt of negative value");
    if n < 2 {
        return n;
    }
    let mut x = (n as f64).sqrt() as Word;
    // Float sqrt can be off by one near perfect squares; correct both
    // directions.
    while x.saturating_mul(x) > n {
        x -= 1;
    }
    while (x + 1).saturating_mul(x + 1) <= n {
        x += 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_vm::{ContractState, Interpreter, TxContext, VmFlavor};

    /// Builds a program that computes `isqrt(arg0)` and returns it.
    fn isqrt_program() -> diablo_vm::Program {
        let mut asm = Asm::new();
        asm.entry("isqrt");
        asm.op(Op::Arg(0)).op(Op::Store(0));
        emit_isqrt(&mut asm, 0, 1);
        asm.op(Op::Load(1)).op(Op::Halt);
        asm.finish()
    }

    fn run_isqrt(n: Word) -> Word {
        let program = isqrt_program();
        let mut state = ContractState::new();
        let r = Interpreter::new(VmFlavor::Geth)
            .execute(
                &program,
                "isqrt",
                &TxContext::simple(1, vec![n]),
                &mut state,
            )
            .expect("isqrt must not fault");
        r.ret.expect("isqrt returns a value")
    }

    #[test]
    fn small_values_exact() {
        for n in 0..500 {
            assert_eq!(run_isqrt(n), isqrt_reference(n), "n = {n}");
        }
    }

    #[test]
    fn perfect_squares_and_neighbours() {
        for root in [1, 2, 3, 100, 999, 10_000, 14_142] {
            let sq = root * root;
            assert_eq!(run_isqrt(sq), root);
            assert_eq!(run_isqrt(sq - 1), root - 1);
            assert_eq!(run_isqrt(sq + 1), root);
        }
    }

    #[test]
    fn mobility_domain_extremes() {
        // Largest squared distance on the 10,000 × 10,000 grid.
        let max = 2 * 10_000 * 10_000;
        assert_eq!(run_isqrt(max), isqrt_reference(max));
        assert_eq!(run_isqrt(max - 17), isqrt_reference(max - 17));
    }

    #[test]
    fn reference_oracle_is_exact() {
        for n in (0..2_000_000).step_by(997) {
            let r = isqrt_reference(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n = {n}, r = {r}");
        }
    }

    mod property {
        use super::*;
        use diablo_testkit::gen::i64s;
        use diablo_testkit::{prop_assert, prop_assert_eq, Property};

        /// Bytecode isqrt equals the oracle over the entire Mobility
        /// DApp domain.
        #[test]
        fn matches_oracle_on_domain() {
            Property::new("matches_oracle_on_domain").check(&i64s(0..=200_000_000), |&n| {
                prop_assert_eq!(run_isqrt(n), isqrt_reference(n));
                Ok(())
            });
        }

        /// The oracle really is the floor square root.
        #[test]
        fn oracle_is_floor_sqrt() {
            Property::new("oracle_is_floor_sqrt").check(&i64s(0..=1_000_000_000_000), |&n| {
                let r = isqrt_reference(n);
                prop_assert!(r * r <= n);
                prop_assert!((r + 1) * (r + 1) > n);
                Ok(())
            });
        }
    }
}
