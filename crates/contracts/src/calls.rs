//! Workload call templates.
//!
//! Maps a DApp plus a transaction sequence number to the concrete call a
//! Diablo Secondary issues: entry point, arguments, payload size. The
//! sequence number deterministically varies arguments (customer
//! positions for Mobility, stock rotation for the Exchange when no
//! specific stock stream is requested) so repeated runs are identical.

use diablo_vm::Word;

use crate::exchange::Stock;
use crate::{mobility, videosharing, DApp};

/// One concrete contract call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSpec {
    /// Entry point name.
    pub entry: &'static str,
    /// Call arguments.
    pub args: Vec<Word>,
    /// Opaque payload bytes shipped with the call (video data).
    pub payload_bytes: u64,
}

impl CallSpec {
    /// Approximate wire size of the transaction carrying this call, in
    /// bytes (signature + header + args + payload).
    pub fn wire_bytes(&self) -> u64 {
        // 64-byte signature, ~40-byte header, 8 bytes per argument.
        112 + 8 * self.args.len() as u64 + self.payload_bytes
    }
}

/// The default entry point of a DApp's workload transactions.
pub fn default_entry(dapp: DApp) -> &'static str {
    match dapp {
        DApp::Exchange => Stock::Apple.entry(),
        DApp::Gaming => "update",
        DApp::WebService => "add",
        DApp::Mobility => "checkDistance",
        DApp::VideoSharing => "upload",
    }
}

/// The call issued by the `seq`-th transaction of a DApp workload.
pub fn call_for(dapp: DApp, seq: u64) -> CallSpec {
    match dapp {
        DApp::Exchange => {
            // Without a per-stock stream, rotate over the GAFAM stocks.
            let stock = Stock::ALL[(seq % 5) as usize];
            CallSpec {
                entry: stock.entry(),
                args: vec![],
                payload_bytes: 0,
            }
        }
        DApp::Gaming => {
            // The paper's workload invokes update(1, 1).
            CallSpec {
                entry: "update",
                args: vec![1, 1],
                payload_bytes: 0,
            }
        }
        DApp::WebService => CallSpec {
            entry: "add",
            args: vec![],
            payload_bytes: 0,
        },
        DApp::Mobility => {
            // Customers scattered deterministically over the grid.
            let cx = ((seq.wrapping_mul(48_271)) % mobility::GRID as u64) as Word;
            let cy = ((seq.wrapping_mul(69_621)) % mobility::GRID as u64) as Word;
            CallSpec {
                entry: "checkDistance",
                args: vec![cx, cy],
                payload_bytes: 0,
            }
        }
        DApp::VideoSharing => CallSpec {
            entry: "upload",
            args: vec![videosharing::VIDEO_BYTES],
            payload_bytes: videosharing::VIDEO_BYTES as u64,
        },
    }
}

/// The call buying one token of a specific stock (used by the per-stock
/// NASDAQ burst workloads of Figure 6).
pub fn exchange_call(stock: Stock) -> CallSpec {
    CallSpec {
        entry: stock.entry(),
        args: vec![],
        payload_bytes: 0,
    }
}

/// The callable entry points of a DApp, in a stable order (indices are
/// the wire encoding of an explicit function selection).
pub fn entries(dapp: DApp) -> &'static [&'static str] {
    match dapp {
        DApp::Exchange => &[
            "checkStock",
            "buyGoogle",
            "buyApple",
            "buyFacebook",
            "buyAmazon",
            "buyMicrosoft",
        ],
        DApp::Gaming => &["update"],
        DApp::WebService => &["add", "get"],
        DApp::Mobility => &["checkDistance"],
        DApp::VideoSharing => &["upload", "owner"],
    }
}

/// Resolves a function name to its entry index for a DApp.
pub fn entry_index(dapp: DApp, function: &str) -> Option<u8> {
    entries(dapp)
        .iter()
        .position(|&e| e == function)
        .map(|i| i as u8)
}

/// The call for an explicitly selected entry with explicit arguments
/// (the benchmark specification's `function: "update(1, 1)"` path).
pub fn call_for_entry(dapp: DApp, entry: u8, args: &[i64]) -> CallSpec {
    let name = entries(dapp)
        .get(entry as usize)
        .copied()
        .unwrap_or_else(|| default_entry(dapp));
    let payload_bytes = if dapp == DApp::VideoSharing && name == "upload" {
        videosharing::VIDEO_BYTES as u64
    } else {
        0
    };
    let args = if dapp == DApp::VideoSharing && name == "upload" && args.is_empty() {
        vec![videosharing::VIDEO_BYTES]
    } else {
        args.to_vec()
    };
    CallSpec {
        entry: name,
        args,
        payload_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calls_are_deterministic() {
        for dapp in DApp::ALL {
            assert_eq!(call_for(dapp, 42), call_for(dapp, 42));
        }
    }

    #[test]
    fn exchange_rotates_stocks() {
        let entries: Vec<&str> = (0..5).map(|s| call_for(DApp::Exchange, s).entry).collect();
        let mut unique = entries.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn mobility_args_stay_on_grid() {
        for seq in 0..1000 {
            let c = call_for(DApp::Mobility, seq);
            assert_eq!(c.entry, "checkDistance");
            assert!((0..mobility::GRID).contains(&c.args[0]));
            assert!((0..mobility::GRID).contains(&c.args[1]));
        }
    }

    #[test]
    fn video_calls_carry_payload() {
        let c = call_for(DApp::VideoSharing, 0);
        assert_eq!(c.payload_bytes, videosharing::VIDEO_BYTES as u64);
        assert!(c.wire_bytes() > 1024);
    }

    #[test]
    fn light_calls_are_small_on_the_wire() {
        let c = call_for(DApp::WebService, 0);
        assert!(c.wire_bytes() < 200);
    }

    #[test]
    fn entry_tables_resolve_every_paper_function() {
        assert_eq!(entry_index(DApp::Gaming, "update"), Some(0));
        assert_eq!(entry_index(DApp::Exchange, "buyApple"), Some(2));
        assert_eq!(entry_index(DApp::Mobility, "checkDistance"), Some(0));
        assert_eq!(entry_index(DApp::WebService, "add"), Some(0));
        assert_eq!(entry_index(DApp::VideoSharing, "upload"), Some(0));
        assert_eq!(entry_index(DApp::Exchange, "sellEverything"), None);
    }

    #[test]
    fn call_for_entry_honors_explicit_args() {
        let c = call_for_entry(DApp::Mobility, 0, &[4000, 7000]);
        assert_eq!(c.entry, "checkDistance");
        assert_eq!(c.args, vec![4000, 7000]);
        // Upload defaults its payload even when the spec passes no args.
        let u = call_for_entry(DApp::VideoSharing, 0, &[]);
        assert_eq!(u.payload_bytes, videosharing::VIDEO_BYTES as u64);
        assert_eq!(u.args, vec![videosharing::VIDEO_BYTES]);
    }

    #[test]
    fn gaming_call_matches_paper_spec() {
        // The paper's workload configuration invokes "update(1, 1)".
        let c = call_for(DApp::Gaming, 7);
        assert_eq!(c.entry, "update");
        assert_eq!(c.args, vec![1, 1]);
    }
}
