//! The Web-service DApp: `Counter`.
//!
//! The paper measures the visits hitting the FIFA '98 website with "a
//! simple Counter smart contract, with an add function, that gets
//! incremented at each request, hence its workload is highly contended"
//! (§3). One storage slot, read-modify-write on every call.

use diablo_vm::{Asm, ContractState, Op, Program, StateLimits, Word};

/// Storage key of the single counter slot.
pub const COUNTER_KEY: Word = 0;

/// Event tag: the counter was incremented (args: new value).
pub const EV_ADDED: u16 = 30;

/// Builds the contract program (identical logic on every flavor).
pub fn program() -> Program {
    let mut asm = Asm::new();
    asm.entry("add");
    asm.op(Op::Push(COUNTER_KEY))
        .op(Op::SLoad)
        .op(Op::Push(1))
        .op(Op::Add)
        .op(Op::Store(0));
    asm.op(Op::Push(COUNTER_KEY)).op(Op::Load(0)).op(Op::SStore);
    asm.op(Op::Load(0)).op(Op::Emit {
        tag: EV_ADDED,
        arity: 1,
    });
    asm.op(Op::Halt);

    // A read-only accessor, useful to verify runs post-mortem.
    asm.entry("get");
    asm.op(Op::Push(COUNTER_KEY)).op(Op::SLoad).op(Op::Halt);
    asm.finish()
}

/// Deploy-time state: counter at zero.
pub fn initial_state(_limits: &StateLimits) -> ContractState {
    ContractState::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_vm::{Interpreter, TxContext, VmFlavor};

    #[test]
    fn add_increments() {
        let p = program();
        let mut s = ContractState::new();
        let vm = Interpreter::new(VmFlavor::Geth);
        for expected in 1..=100 {
            let r = vm
                .execute(&p, "add", &TxContext::simple(1, vec![]), &mut s)
                .unwrap();
            assert_eq!(r.events, vec![(EV_ADDED, vec![expected])]);
        }
        assert_eq!(s.load(COUNTER_KEY), 100);
    }

    #[test]
    fn get_returns_current_value() {
        let p = program();
        let mut s = ContractState::new();
        let vm = Interpreter::new(VmFlavor::Geth);
        vm.execute(&p, "add", &TxContext::simple(1, vec![]), &mut s)
            .unwrap();
        vm.execute(&p, "add", &TxContext::simple(1, vec![]), &mut s)
            .unwrap();
        let r = vm
            .execute(&p, "get", &TxContext::simple(1, vec![]), &mut s)
            .unwrap();
        assert_eq!(r.ret, Some(2));
    }

    #[test]
    fn counter_value_equals_number_of_adds_on_every_flavor() {
        // The commit-count invariant the integration tests rely on: the
        // final counter value is exactly the number of committed adds.
        for flavor in VmFlavor::ALL {
            let p = program();
            let mut s = initial_state(&flavor.state_limits());
            let vm = Interpreter::new(flavor);
            for _ in 0..37 {
                vm.execute(&p, "add", &TxContext::simple(9, vec![]), &mut s)
                    .unwrap_or_else(|e| panic!("{flavor}: {e}"));
            }
            assert_eq!(s.load(COUNTER_KEY), 37, "{flavor}");
        }
    }

    #[test]
    fn add_fits_every_hard_budget() {
        for flavor in VmFlavor::ALL {
            let p = program();
            let mut s = initial_state(&flavor.state_limits());
            let r = Interpreter::new(flavor)
                .execute(&p, "add", &TxContext::simple(1, vec![]), &mut s)
                .unwrap();
            if let Some(budget) = flavor.per_tx_budget() {
                assert!(r.gas_used <= budget);
            }
        }
    }
}
