//! The Video-sharing DApp: `DecentralizedYoutube`.
//!
//! The `upload` function "gets some video data as a parameter and assigns
//! the requester's address to the data before emitting a corresponding
//! event" (§3). The video payload itself travels with the transaction;
//! the contract accounts for its bytes, assigns ownership and emits the
//! event.
//!
//! There is deliberately **no AVM build** of this contract: the paper
//! "could not implement the video sharing DApp in TEAL as we needed data
//! structures that were too large to be stored in the state whose space
//! is limited by a key-value store with 128 bytes per key-value pair"
//! (§5.2). [`crate::build()`] surfaces that as [`crate::Unsupported`].

use diablo_vm::{Asm, ContractState, Op, Program, StateLimits, Word};

/// Size of a video payload in bytes (average item in the workload).
pub const VIDEO_BYTES: Word = 1024;

/// Storage key of the next-video-id counter.
pub const NEXT_ID_KEY: Word = 0;

/// Base key of the video-id → owner mapping.
pub const OWNER_BASE_KEY: Word = 1_000;

/// Event tag: a video was uploaded (args: video id, owner, byte length).
pub const EV_UPLOADED: u16 = 50;

/// Builds the contract program.
///
/// `upload(len)`: records `len` payload bytes, assigns the requester as
/// owner of a fresh video id and emits `Uploaded(id, owner, len)`.
pub fn program() -> Program {
    let mut asm = Asm::new();
    asm.entry("upload");
    // id = storage[NEXT_ID_KEY]; storage[NEXT_ID_KEY] = id + 1
    asm.op(Op::Push(NEXT_ID_KEY)).op(Op::SLoad).op(Op::Store(0));
    asm.op(Op::Push(NEXT_ID_KEY))
        .op(Op::Load(0))
        .op(Op::Push(1))
        .op(Op::Add)
        .op(Op::SStore);
    // Account for the payload bytes (charged per byte by the flavor).
    asm.op(Op::Arg(0)).op(Op::StoreBlob);
    // storage[OWNER_BASE_KEY + id] = caller
    asm.op(Op::Push(OWNER_BASE_KEY))
        .op(Op::Load(0))
        .op(Op::Add)
        .op(Op::Caller)
        .op(Op::SStore);
    // emit Uploaded(id, caller, len)
    asm.op(Op::Load(0))
        .op(Op::Caller)
        .op(Op::Arg(0))
        .op(Op::Emit {
            tag: EV_UPLOADED,
            arity: 3,
        });
    asm.op(Op::Load(0)).op(Op::Halt);

    // Read-only accessor: owner(id).
    asm.entry("owner");
    asm.op(Op::Push(OWNER_BASE_KEY))
        .op(Op::Arg(0))
        .op(Op::Add)
        .op(Op::SLoad)
        .op(Op::Halt);
    asm.finish()
}

/// Deploy-time state: empty catalogue.
pub fn initial_state(_limits: &StateLimits) -> ContractState {
    ContractState::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_vm::{Interpreter, TxContext, VmFlavor};

    fn upload_ctx(caller: Word) -> TxContext {
        TxContext {
            caller,
            args: vec![VIDEO_BYTES],
            payload_bytes: VIDEO_BYTES as u64,
            gas_limit: u64::MAX,
        }
    }

    #[test]
    fn upload_assigns_requester_and_emits() {
        let p = program();
        let mut s = ContractState::new();
        let vm = Interpreter::new(VmFlavor::Geth);
        let r = vm.execute(&p, "upload", &upload_ctx(77), &mut s).unwrap();
        assert_eq!(r.events, vec![(EV_UPLOADED, vec![0, 77, VIDEO_BYTES])]);
        assert_eq!(s.load(OWNER_BASE_KEY), 77);
        assert_eq!(s.blob_bytes(), VIDEO_BYTES as u64);

        // Second upload gets the next id.
        let r2 = vm.execute(&p, "upload", &upload_ctx(88), &mut s).unwrap();
        assert_eq!(r2.ret, Some(1));
        assert_eq!(s.load(OWNER_BASE_KEY + 1), 88);
        assert_eq!(s.blob_count(), 2);
    }

    #[test]
    fn owner_accessor_reads_back() {
        let p = program();
        let mut s = ContractState::new();
        let vm = Interpreter::new(VmFlavor::Geth);
        vm.execute(&p, "upload", &upload_ctx(42), &mut s).unwrap();
        let r = vm
            .execute(&p, "owner", &TxContext::simple(1, vec![0]), &mut s)
            .unwrap();
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn runs_on_movevm_and_ebpf_but_not_within_avm_state() {
        for flavor in [VmFlavor::Geth, VmFlavor::MoveVm, VmFlavor::Ebpf] {
            let p = program();
            let mut s = initial_state(&flavor.state_limits());
            Interpreter::new(flavor)
                .execute(&p, "upload", &upload_ctx(5), &mut s)
                .unwrap_or_else(|e| panic!("{flavor}: {e}"));
        }
        // On the AVM the 1 KiB payload violates the 128-byte entry limit
        // (and the per-byte budget) — the DApp cannot run, mirroring the
        // paper's "we could not implement the video sharing DApp in
        // Teal".
        let p = program();
        let mut s = initial_state(&VmFlavor::Avm.state_limits());
        let err = Interpreter::new(VmFlavor::Avm)
            .execute(&p, "upload", &upload_ctx(5), &mut s)
            .unwrap_err();
        assert!(
            matches!(
                err,
                diablo_vm::ExecError::StateLimitExceeded
                    | diablo_vm::ExecError::BudgetExceeded { .. }
            ),
            "got {err}"
        );
    }
}
