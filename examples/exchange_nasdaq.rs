//! The Exchange DApp under the NASDAQ market-open rush.
//!
//! Replays the Apple (AAPL) stock burst — 10,000 buy orders in the
//! first second — through the `ExchangeContractGafam` contract on two
//! chains with opposite mempool philosophies: Quorum (IBFT, never drops
//! a request) and Solana (bounded pool, drops under pressure), then
//! prints their latency CDFs side by side (the paper's Figure 6 story).
//!
//! Run with: `cargo run --release --example exchange_nasdaq`

use diablo::chains::{Chain, Experiment, RunResult};
use diablo::contracts::DApp;
use diablo::net::DeploymentKind;
use diablo::workloads::traces;

fn run(chain: Chain) -> RunResult {
    Experiment::new(chain, DeploymentKind::Consortium, traces::apple())
        .with_dapp(DApp::Exchange)
        .run()
}

fn main() {
    println!("Exchange DApp / Apple burst (peak 10,000 TPS) on the consortium deployment\n");
    let quorum = run(Chain::Quorum);
    let solana = run(Chain::Solana);

    for r in [&quorum, &solana] {
        println!("{}", r.summary());
    }

    println!("\nLatency CDF (fraction of submitted orders committed within t):");
    println!("{:>8} {:>10} {:>10}", "t", "Quorum", "Solana");
    for t in [1.0, 2.0, 4.0, 8.0, 15.0, 30.0, 60.0, 120.0] {
        let frac = |r: &RunResult| {
            let cdf = r.latency_cdf();
            cdf.fraction_below(t) * cdf.len() as f64 / r.submitted().max(1) as f64
        };
        println!(
            "{:>7.0}s {:>9.1}% {:>9.1}%",
            t,
            frac(&quorum) * 100.0,
            frac(&solana) * 100.0
        );
    }

    println!(
        "\nQuorum's IBFT never drops an admitted request: the burst is fully absorbed. \
         Solana's bounded pool plateaus — the dropped orders never commit, exactly the \
         availability trade-off of the paper's §6.5."
    );
    let dropped = solana.submitted() - solana.committed();
    println!(
        "Solana dropped {} of {} orders.",
        dropped,
        solana.submitted()
    );
}
