//! Fault tolerance on a custom deployment.
//!
//! Combines three extension features: a custom setup (an explicit node
//! list instead of one of the paper's five configurations), a synthetic
//! diurnal workload, and fault injection — crash exactly `f` nodes at
//! mid-run, then `f + 1`, and watch a deterministic BFT chain tolerate
//! the first and halt on the second.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use diablo::chains::{Chain, Experiment, FaultPlan};
use diablo::net::{DeploymentConfig, DeploymentKind, InstanceType};
use diablo::sim::{DetRng, SimTime};
use diablo::workloads::synth;

fn main() {
    // A 13-node geo-spread consortium (f = 4).
    let config = DeploymentConfig::spread(DeploymentKind::Devnet, 13, InstanceType::C52xlarge);
    let f = config.byzantine_f();
    println!(
        "custom deployment: {} nodes over {} regions, f = {f}\n",
        config.node_count(),
        config.region_count()
    );

    // A day-curve workload with Poisson jitter.
    let mut rng = DetRng::new(2024);
    let workload = synth::poissonize(&synth::diurnal(400.0, 200.0, 60, 120), &mut rng);
    println!("workload: {workload}\n");

    for (label, faults) in [
        ("no faults", FaultPlan::none()),
        (
            "crash f at t=60s",
            FaultPlan::builder()
                .crash_many(f, SimTime::from_secs(60))
                .build(),
        ),
        (
            "crash f+1 at t=60s",
            FaultPlan::builder()
                .crash_many(f + 1, SimTime::from_secs(60))
                .build(),
        ),
        (
            "crash f+1, heal 90s",
            FaultPlan::builder()
                .crash_many(f + 1, SimTime::from_secs(60))
                .recover_many(f + 1, SimTime::from_secs(90))
                .build(),
        ),
    ] {
        let r = Experiment::new(Chain::Quorum, DeploymentKind::Devnet, workload.clone())
            .with_config(config.clone())
            .with_faults(faults)
            .run();
        let series = r.commit_series();
        let before: u64 = (0..60).map(|s| series.get(s)).sum();
        let after: u64 = (60..series.seconds()).map(|s| series.get(s)).sum();
        println!(
            "{label:<20} commits before fault: {before:>6}, after: {after:>6}  ({:.1}% total)",
            r.commit_ratio() * 100.0
        );
    }
    println!(
        "\nIBFT tolerates f Byzantine nodes; one more and the quorum is gone — until \
         the crashed nodes rejoin and catch up."
    );
}
