//! Adding a new blockchain to Diablo.
//!
//! §4 of the paper: "To add a new blockchain, one has to implement at
//! least one of these interaction types as well as 4 functions that
//! convert the benchmark specification to an executable test program."
//! This example implements those four functions — `create_client`,
//! `create_resource`, `encode`, `trigger` — for a toy centralized
//! ledger ("InstantChain") that commits everything after a fixed 50 ms,
//! then drives it with the framework's planning pipeline and compares
//! it against the simulated Quorum.
//!
//! Run with: `cargo run --release --example custom_chain`

use diablo::core::abstraction::{
    ClientId, Connector, ConnectorError, Encoded, Interaction, ResourceSpec,
};
use diablo::core::secondary::{declare_resources, plan_range};
use diablo::core::spec::BenchmarkSpec;
use diablo::core::SimConnector;
use diablo::sim::SimDuration;

/// A toy blockchain connector: one sequencer, instant finality.
///
/// `Encoded` payloads are produced by an inner [`SimConnector`] (the
/// encoding is opaque to the framework either way); what makes this a
/// different "chain" is its trigger/commit behaviour.
struct InstantChain {
    inner: SimConnector,
    /// (submit_time_secs, latency_secs) per triggered interaction.
    commits: Vec<(f64, f64)>,
}

impl InstantChain {
    fn new() -> Self {
        InstantChain {
            inner: SimConnector::new("instantchain"),
            commits: Vec::new(),
        }
    }
}

impl Connector for InstantChain {
    fn name(&self) -> &str {
        "instantchain"
    }

    // Function 1: s.create_client(E).
    fn create_client(&mut self, view: &[String]) -> Result<ClientId, ConnectorError> {
        self.inner.create_client(view)
    }

    // Function 2: create_resource(φʳ).
    fn create_resource(&mut self, resource: &ResourceSpec) -> Result<(), ConnectorError> {
        self.inner.create_resource(resource)
    }

    // Function 3: encode(φⁱ, r, t).
    fn encode(
        &mut self,
        interaction: &Interaction,
        at: diablo::sim::SimTime,
    ) -> Result<Encoded, ConnectorError> {
        self.inner.encode(interaction, at)
    }

    // Function 4: c.trigger(e) — the toy sequencer commits after 50 ms.
    fn trigger(&mut self, _client: ClientId, encoded: Encoded) -> Result<(), ConnectorError> {
        let submit = encoded.at();
        let decide = submit + SimDuration::from_millis(50);
        self.commits
            .push((submit.as_secs_f64(), decide.since(submit).as_secs_f64()));
        Ok(())
    }
}

const SPEC: &str = r#"
workloads:
  - number: 2
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 100 } }
          load:
            0: 200
            20: 0
"#;

fn main() {
    let spec = BenchmarkSpec::parse(SPEC).expect("valid spec");

    // Drive the custom chain through the same planning pipeline the six
    // built-in adapters use.
    let mut chain = InstantChain::new();
    declare_resources(&spec, &mut chain).expect("resources");
    plan_range(&spec, (0, spec.client_count()), &mut chain).expect("plan");

    let n = chain.commits.len();
    let mean_latency: f64 = chain.commits.iter().map(|&(_, l)| l).sum::<f64>() / n as f64;
    println!(
        "InstantChain: {n} transactions, average latency {:.3}s (fixed sequencer)",
        mean_latency
    );

    // The same spec on the simulated Quorum, for contrast.
    let report = diablo::core::run_local(
        diablo::chains::Chain::Quorum,
        diablo::net::DeploymentKind::Testnet,
        SPEC,
        "native-400",
        &diablo::core::BenchmarkOptions::default(),
    )
    .expect("quorum run");
    println!(
        "Quorum:       {} transactions, average latency {:.3}s (IBFT over a real network model)",
        report.result.submitted(),
        report.result.avg_latency_secs()
    );
    println!(
        "\nA real consensus protocol pays for agreement; a sequencer does not. Diablo \
         exists to measure exactly that difference on equal workloads."
    );
}
