//! Quickstart: benchmark one blockchain with one workload.
//!
//! Mirrors the artifact's first experiment (`workload-native-10.yaml`):
//! a light native-transfer workload against a simulated Algorand
//! testnet, printing the primary's statistics block.
//!
//! Run with: `cargo run --release --example quickstart`

use diablo::chains::{Chain, Experiment};
use diablo::net::DeploymentKind;
use diablo::workloads::traces;

fn main() {
    // 10 transactions per second for 30 seconds — the artifact's
    // "native-10" smoke workload.
    let workload = traces::constant(10.0, 30);

    println!(
        "Running {} on a simulated Algorand {}...",
        workload,
        DeploymentKind::Testnet
    );
    let result = Experiment::new(Chain::Algorand, DeploymentKind::Testnet, workload).run();

    println!("{}", result.summary());
    println!(
        "first transaction: submitted at {:.2}s, committed after {:.2}s",
        result.records[0].submitted.as_secs_f64(),
        result.records[0].latency_secs().unwrap_or(f64::NAN),
    );

    // The same experiment across all six chains, one line each.
    println!("\nAll six chains, same workload:");
    for chain in Chain::ALL {
        let r = Experiment::new(chain, DeploymentKind::Testnet, traces::constant(10.0, 30)).run();
        println!(
            "  {:<10} throughput {:>5.1} TPS, latency {:>5.1}s, commits {:>5.1}%",
            chain.name(),
            r.avg_throughput(),
            r.avg_latency_secs(),
            r.commit_ratio() * 100.0
        );
    }
}
