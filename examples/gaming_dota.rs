//! The paper's §4 workload specification, end to end.
//!
//! Parses the gaming-DApp configuration file printed in the paper
//! (three clients hammering `DecentralizedDota.update(1, 1)` at
//! ~4,432 TPS each), runs it through the Primary/Secondary pipeline
//! against a simulated Quorum devnet, and writes the aggregator's
//! `results.json` and the artifact's `results.csv` next to the binary.
//!
//! Run with: `cargo run --release --example gaming_dota`

use diablo::chains::Chain;
use diablo::core::output::{results_csv, results_json};
use diablo::core::spec::PAPER_DOTA_SPEC;
use diablo::core::{run_local, BenchmarkOptions};
use diablo::net::DeploymentKind;

fn main() {
    println!("Benchmark specification (paper §4):");
    println!("{PAPER_DOTA_SPEC}");

    let options = BenchmarkOptions {
        secondaries: 3,
        ..Default::default()
    };
    let report = run_local(
        Chain::Quorum,
        DeploymentKind::Devnet,
        PAPER_DOTA_SPEC,
        "dota-section4",
        &options,
    )
    .expect("the paper's own spec must parse and run");

    print!("{}", report.stats_text());

    // The Primary's JSON output and the artifact's CSV conversion.
    let json = results_json(&report.result);
    let csv = results_csv(&report.result);
    std::fs::write("dota-results.json", &json).expect("write results.json");
    std::fs::write("dota-results.csv", &csv).expect("write results.csv");
    println!(
        "wrote dota-results.json ({} bytes) and dota-results.csv ({} lines)",
        json.len(),
        csv.lines().count()
    );

    // Post-mortem analysis from the records, as §4 describes: committed
    // throughput over time.
    let series = report.result.commit_series();
    println!("\ncommitted transactions per second (first 20 s):");
    for sec in 0..20 {
        println!("  t={sec:>3}s  {:>6}", series.get(sec));
    }
}
