//! The distributed Primary/Secondary deployment over real TCP.
//!
//! Starts a Diablo Primary on a localhost listener and three Secondaries
//! (as the paper's §5.3 command lines do, with a location tag each),
//! runs a native-transfer benchmark against a simulated Diem testnet
//! and prints both the Secondaries' local statistics and the Primary's
//! aggregate.
//!
//! Run with: `cargo run --release --example distributed_tcp`

use std::net::TcpListener;
use std::thread;

use diablo::chains::Chain;
use diablo::core::primary::BenchmarkOptions;
use diablo::core::wire::{run_secondary, serve_primary};
use diablo::net::DeploymentKind;

const SPEC: &str = r#"
let:
  - &acc { sample: !account { number: 500 } }
workloads:
  - number: 6
    client:
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !transfer
            from: *acc
          load:
            0: 100
            30: 0
"#;

fn main() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind localhost");
    let addr = listener.local_addr().expect("local addr").to_string();
    println!("primary listening on {addr}, expecting 3 secondaries\n");

    // Spawn the three Secondaries, tagged like the paper's AWS zones.
    let tags = ["us-east-2", "eu-north-1", "ap-northeast-1"];
    let secondaries: Vec<_> = tags
        .iter()
        .map(|tag| {
            let addr = addr.clone();
            let tag = tag.to_string();
            thread::spawn(move || run_secondary(&addr, &tag))
        })
        .collect();

    // The Primary coordinates the run.
    let report = serve_primary(
        &listener,
        Chain::Diem,
        DeploymentKind::Testnet,
        SPEC,
        "native-600",
        &BenchmarkOptions::default(),
        tags.len(),
    )
    .expect("primary run");

    for handle in secondaries {
        let stats = handle
            .join()
            .expect("secondary thread")
            .expect("secondary run");
        println!("{stats}");
    }
    println!();
    print!("{}", report.stats_text());
}
