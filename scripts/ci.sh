#!/bin/sh
# Offline CI gate: the workspace is hermetic (all deps are in-tree path
# crates), so everything below must pass from a cold registry.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline (tier-1)"
cargo test -q --offline

echo "==> cargo test -q --release --offline --workspace"
cargo test -q --release --offline --workspace

# Deterministic parallel execution: replay the serial-vs-parallel
# differential properties under pinned seeds. Each seed pins one
# flavor / DApp / thread-count case — together they cover 2, 4 and 8
# workers — while the unseeded workspace run above sweeps the full
# randomized case set.
echo "==> parallel differential replays (pinned seeds: 2/4/8 workers)"
for seed in 0xd1ab70 0xb10c5 0x7; do
    echo "    DIABLO_PROP_SEED=$seed"
    DIABLO_PROP_SEED="$seed" \
        cargo test -q --release --offline -p diablo-chains --test parallel_differential
done

# Optimistic (Block-STM-style) execution: the same pinned-seed replay
# discipline over the optimistic differential suite, which also covers
# the Zipfian hot-account workload the static scheduler serializes.
# The unseeded workspace run above sweeps the full randomized case set;
# the 2-sample bench smoke at the bottom additionally drives the
# serial/static/optimistic arms of the block_execution bench, each
# sample asserting bit-identity against the serial reference.
echo "==> optimistic differential replays (pinned seeds: 2/4/8 workers)"
for seed in 0xd1ab70 0xb10c5 0x7; do
    echo "    DIABLO_PROP_SEED=$seed"
    DIABLO_PROP_SEED="$seed" \
        cargo test -q --release --offline -p diablo-chains --test optimistic_differential
done

# Optimistic end-to-end smoke: a pinned-seed exact-mode chaos run
# through the optimistic executor must be byte-identical across worker
# counts — results and telemetry counters both (docs/EXECUTION.md §4.2).
echo "==> optimistic smoke (pinned-seed chaos run, 1 vs 8 workers byte-compared)"
opt_a="$(mktemp /tmp/diablo-opt-a.XXXXXX.json)"
opt_b="$(mktemp /tmp/diablo-opt-b.XXXXXX.json)"
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --seed=11 --exact --optimistic --threads=1 \
    --output="$opt_a" workloads/exchange-partition.yaml >/dev/null
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --seed=11 --exact --optimistic --threads=8 \
    --output="$opt_b" workloads/exchange-partition.yaml >/dev/null
cmp "$opt_a" "$opt_b" || {
    echo "optimistic smoke: worker counts produced different output" >&2
    exit 1
}
grep -qF '"optimistic.blocks"' "$opt_a" || {
    echo "optimistic smoke: optimistic.* counters missing from telemetry" >&2
    exit 1
}
rm -f "$opt_a" "$opt_b"

# Telemetry smoke: one Exchange benchmark with telemetry on must emit
# a results document whose `telemetry` section parses and carries the
# pipeline's headline counters (compare validates the JSON reader path
# on the same file).
echo "==> telemetry smoke (Exchange run, JSON telemetry section)"
tmp_json="$(mktemp /tmp/diablo-telemetry.XXXXXX.json)"
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --output="$tmp_json" workloads/exchange-apple.yaml >/dev/null
for key in '"telemetry":{' '"counters":{' '"mempool.admitted"' \
    '"consensus.blocks.committed"' '"histograms":{' '"spans":{'; do
    grep -qF "$key" "$tmp_json" || {
        echo "telemetry smoke: missing $key in $tmp_json" >&2
        exit 1
    }
done
cargo run -q --release --offline --bin diablo -- compare "$tmp_json" "$tmp_json" >/dev/null
rm -f "$tmp_json"

# Chaos smoke: a pinned-seed run with crash-recovery, a partition and
# message loss (flags on top of the workload's own fault: section) must
# be byte-identical across two invocations — fault injection draws all
# its randomness from the seeded simulation RNG.
echo "==> chaos smoke (pinned-seed partition run, byte-compared)"
chaos_a="$(mktemp /tmp/diablo-chaos-a.XXXXXX.json)"
chaos_b="$(mktemp /tmp/diablo-chaos-b.XXXXXX.json)"
for out in "$chaos_a" "$chaos_b"; do
    cargo run -q --release --offline --bin diablo -- run --chain=quorum \
        --seed=11 --crash=2@10..25 --loss=10%@0..40 \
        --output="$out" workloads/exchange-partition.yaml >/dev/null
done
cmp "$chaos_a" "$chaos_b" || {
    echo "chaos smoke: pinned-seed runs differ" >&2
    exit 1
}
rm -f "$chaos_a" "$chaos_b"

# Storage smoke: the staged commit pipeline (execute → merkleize →
# persist → prune, docs/STORAGE.md) must (a) report the same state root
# at every prune mode, (b) be byte-identical across worker counts with
# the store on, and (c) leave output byte-identical to the pre-store
# format when disabled.
echo "==> storage smoke (prune modes agree on roots, store output byte-compared)"
store_a="$(mktemp /tmp/diablo-store-a.XXXXXX.json)"
store_b="$(mktemp /tmp/diablo-store-b.XXXXXX.json)"
root_ref=""
for prune in full distance=3 before=20; do
    cargo run -q --release --offline --bin diablo -- run --chain=quorum \
        --seed=11 --exact --prune="$prune" --segment-blocks=4 \
        --output="$store_a" workloads/exchange-apple.yaml >/dev/null
    root="$(grep -o '"root":"[0-9a-f]*"' "$store_a")"
    [ -n "$root" ] || { echo "storage smoke: no root under --prune=$prune" >&2; exit 1; }
    if [ -z "$root_ref" ]; then root_ref="$root"; fi
    [ "$root" = "$root_ref" ] || {
        echo "storage smoke: --prune=$prune root differs: $root vs $root_ref" >&2
        exit 1
    }
done
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --seed=11 --exact --optimistic --threads=8 --store \
    --output="$store_a" workloads/exchange-apple.yaml >/dev/null
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --seed=11 --exact --threads=1 --store \
    --output="$store_b" workloads/exchange-apple.yaml >/dev/null
for key in '"storage":{' '"store.blocks"'; do
    grep -qF "$key" "$store_a" || {
        echo "storage smoke: missing $key in $store_a" >&2
        exit 1
    }
done
# The storage section and store.* gauges must agree between the serial
# and the 8-worker optimistic run (full records differ only in the
# telemetry the executors themselves emit, so compare the store parts).
for pat in '"storage":{[^}]*}' '"store\.[a-z_]*":[0-9]*'; do
    a="$(grep -o "$pat" "$store_a")"; b="$(grep -o "$pat" "$store_b")"
    [ "$a" = "$b" ] || {
        echo "storage smoke: store output differs across executors" >&2
        echo "  8-worker optimistic: $a" >&2
        echo "  serial:              $b" >&2
        exit 1
    }
done
rm -f "$store_a" "$store_b"

# Trace smoke: a pinned-seed run with per-transaction tracing must
# produce byte-identical Chrome trace files across worker counts (the
# sampler membership is a pure function of seed + transaction ids, and
# the export carries only modeled-time facts), and trace-diff of a file
# against itself must align every transaction with zero delta.
echo "==> trace smoke (pinned-seed run, --trace-sample=64, 1 vs 8 workers byte-compared)"
trace_a="$(mktemp /tmp/diablo-trace-a.XXXXXX.json)"
trace_b="$(mktemp /tmp/diablo-trace-b.XXXXXX.json)"
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --seed=11 --exact --threads=1 --trace-sample=64 \
    --trace-out="$trace_a" workloads/exchange-apple.yaml >/dev/null
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --seed=11 --exact --threads=8 --trace-sample=64 \
    --trace-out="$trace_b" workloads/exchange-apple.yaml >/dev/null
cmp "$trace_a" "$trace_b" || {
    echo "trace smoke: worker counts produced different trace files" >&2
    exit 1
}
grep -qF '"ph":"X"' "$trace_a" || {
    echo "trace smoke: no duration events in $trace_a" >&2
    exit 1
}
cargo run -q --release --offline --bin diablo -- trace-diff "$trace_a" "$trace_b" \
    | grep -qF '(0 only in A, 0 only in B)' || {
    echo "trace smoke: trace-diff failed to align identical files" >&2
    exit 1
}
rm -f "$trace_a" "$trace_b"

# Live smoke: the Primary spawns two real Secondary processes over
# localhost TCP and paces the run against the wall clock (compressed
# 50× via --time-scale so the 12 s workload takes well under a second).
# The run must complete with no lost Secondaries and report a finite
# live-vs-simulation fidelity score in the liveDiff section.
echo "==> live smoke (2 Secondary processes over TCP, fidelity-diffed)"
live_json="$(mktemp /tmp/diablo-live.XXXXXX.json)"
cargo run -q --release --offline --bin diablo -- run --live --chain=quorum \
    --seed=11 --secondaries=2 --grace=2 --time-scale=50 \
    --output="$live_json" workloads/exchange.yaml >/dev/null
for key in '"liveDiff":{' '"lostSecondaries":0' '"phases":[' ; do
    grep -qF "$key" "$live_json" || {
        echo "live smoke: missing $key in $live_json" >&2
        exit 1
    }
done
fidelity="$(grep -o '"fidelity":[0-9.]*' "$live_json" | head -n1 | cut -d: -f2)"
[ -n "$fidelity" ] || {
    echo "live smoke: fidelity is not a finite number" >&2
    exit 1
}
awk "BEGIN { exit !($fidelity > 0 && $fidelity <= 1) }" || {
    echo "live smoke: fidelity $fidelity out of (0, 1]" >&2
    exit 1
}
rm -f "$live_json"

# Sim-path regression: without --live, the unified RunConfig resolution
# must leave reports byte-identical to the checked-in golden file (same
# spec, same pinned seed). This is the guard that the config redesign
# and the live plumbing never perturb the deterministic path.
echo "==> sim golden (pinned-seed run vs results/golden_sim_exchange.json)"
sim_json="$(mktemp /tmp/diablo-sim-golden.XXXXXX.json)"
cargo run -q --release --offline --bin diablo -- run --chain=quorum \
    --seed=11 --output="$sim_json" workloads/exchange-apple.yaml >/dev/null
cmp "$sim_json" results/golden_sim_exchange.json || {
    echo "sim golden: results JSON drifted from the golden file" >&2
    echo "  (if the change is intentional, regenerate the golden:" >&2
    echo "   diablo run --chain=quorum --seed=11 \\" >&2
    echo "       --output=results/golden_sim_exchange.json workloads/exchange-apple.yaml)" >&2
    exit 1
}
rm -f "$sim_json"

# Disabled-build check: with telemetry compiled out, the no-op macros
# (and the per-transaction tracer) must still type-check everywhere and
# tier-1 must pass. A separate target dir keeps the two configurations'
# caches apart.
echo "==> telemetry-off build + tier-1 (--cfg diablo_telemetry_off)"
RUSTFLAGS="--cfg diablo_telemetry_off" CARGO_TARGET_DIR=target/telemetry-off \
    cargo test -q --offline

echo "==> cargo doc --no-deps --offline --workspace (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Bench smoke: every bench binary must run end to end. Two samples per
# benchmark keeps this to seconds; it guards the harness wiring and the
# in-bench assertions (e.g. baseline and prepared agreeing on success),
# not the numbers.
echo "==> cargo bench --offline (smoke, DIABLO_BENCH_SAMPLES=2)"
# Absolute path: bench binaries run with their package directory as
# cwd, so a relative DIABLO_BENCH_JSON would scatter per-crate.
bench_json="${DIABLO_BENCH_JSON:-$(pwd)/target/bench-smoke}"
DIABLO_BENCH_SAMPLES=2 DIABLO_BENCH_JSON="$bench_json" \
    cargo bench -q --offline --workspace

# Bench gate: the scale bench must stay within DIABLO_BENCH_GATE_PCT
# (default 10) percent of the checked-in baseline. The gated run uses
# the same sample count as the baseline (5, not the 2-sample smoke
# above — min-of-2 is too noisy to gate on) and overwrites the smoke
# run's BENCH_scale.json. The gate compares each benchmark's current
# fastest sample against the baseline mean (transient CI load inflates
# means long before it inflates the fastest sample; a real regression
# moves both) and only compares entries whose `items` counts match, so
# a reshaped bench skips rather than false-fails.
#
# Updating the baseline after an intentional perf change (the absolute
# path matters — see the DIABLO_BENCH_JSON note above):
#
#   DIABLO_BENCH_SAMPLES=5 DIABLO_BENCH_JSON="$(pwd)/results" \
#       cargo bench -p diablo-bench --bench scale
#   mv results/BENCH_scale.json results/BENCH_baseline.json
#
# (run on an otherwise idle machine; commit the new file). The full-
# scale artifact results/BENCH_scale.json is regenerated the same way
# with DIABLO_BENCH_FULL=1.
# Each gate also appends its per-bench verdicts to
# results/GATE_report.json (override with DIABLO_GATE_REPORT); the
# first gate truncates it so every CI run writes one fresh report.
echo "==> bench gate (scale bench vs results/BENCH_baseline.json)"
DIABLO_BENCH_SAMPLES=5 DIABLO_BENCH_JSON="$bench_json" \
    cargo bench -q --offline -p diablo-bench --bench scale
DIABLO_GATE_TRUNCATE=1 \
    cargo run -q --release --offline -p diablo-bench --bin bench_gate -- \
    results/BENCH_baseline.json "$bench_json/BENCH_scale.json" \
    "${DIABLO_BENCH_GATE_PCT:-10}"

# Same gate over the state-store bench: the staged commit pipeline's
# e2e overhead and its trie/table kernels must stay within the window.
# The baseline file carries both suites; the gate matches by name.
echo "==> bench gate (state_store bench vs results/BENCH_baseline.json)"
DIABLO_BENCH_SAMPLES=5 DIABLO_BENCH_JSON="$bench_json" \
    cargo bench -q --offline -p diablo-bench --bench state_store
cargo run -q --release --offline -p diablo-bench --bin bench_gate -- \
    results/BENCH_baseline.json "$bench_json/BENCH_state_store.json" \
    "${DIABLO_BENCH_GATE_PCT:-10}"

# Same gate over the tracing bench: the untraced run pins the hot path
# (tracing off must cost one atomic load per emission site) and the
# sampled/full runs bound the cost of tracing itself.
echo "==> bench gate (trace_overhead bench vs results/BENCH_baseline.json)"
DIABLO_BENCH_SAMPLES=5 DIABLO_BENCH_JSON="$bench_json" \
    cargo bench -q --offline -p diablo-bench --bench trace_overhead
cargo run -q --release --offline -p diablo-bench --bin bench_gate -- \
    results/BENCH_baseline.json "$bench_json/BENCH_trace.json" \
    "${DIABLO_BENCH_GATE_PCT:-10}"

echo "CI OK"
