#!/bin/sh
# Offline CI gate: the workspace is hermetic (all deps are in-tree path
# crates), so everything below must pass from a cold registry.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline (tier-1)"
cargo test -q --offline

echo "==> cargo test -q --release --offline --workspace"
cargo test -q --release --offline --workspace

# Deterministic parallel execution: replay the serial-vs-parallel
# differential properties under pinned seeds. Each seed pins one
# flavor / DApp / thread-count case — together they cover 2, 4 and 8
# workers — while the unseeded workspace run above sweeps the full
# randomized case set.
echo "==> parallel differential replays (pinned seeds: 2/4/8 workers)"
for seed in 0xd1ab70 0xb10c5 0x7; do
    echo "    DIABLO_PROP_SEED=$seed"
    DIABLO_PROP_SEED="$seed" \
        cargo test -q --release --offline -p diablo-chains --test parallel_differential
done

echo "==> cargo doc --no-deps --offline --workspace (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Bench smoke: every bench binary must run end to end. Two samples per
# benchmark keeps this to seconds; it guards the harness wiring and the
# in-bench assertions (e.g. baseline and prepared agreeing on success),
# not the numbers.
echo "==> cargo bench --offline (smoke, DIABLO_BENCH_SAMPLES=2)"
DIABLO_BENCH_SAMPLES=2 DIABLO_BENCH_JSON="${DIABLO_BENCH_JSON:-target/bench-smoke}" \
    cargo bench -q --offline --workspace

echo "CI OK"
