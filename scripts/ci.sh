#!/bin/sh
# Offline CI gate: the workspace is hermetic (all deps are in-tree path
# crates), so everything below must pass from a cold registry.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline (tier-1)"
cargo test -q --offline

echo "==> cargo test -q --release --offline --workspace"
cargo test -q --release --offline --workspace

echo "==> cargo doc --no-deps --offline --workspace (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

# Bench smoke: every bench binary must run end to end. Two samples per
# benchmark keeps this to seconds; it guards the harness wiring and the
# in-bench assertions (e.g. baseline and prepared agreeing on success),
# not the numbers.
echo "==> cargo bench --offline (smoke, DIABLO_BENCH_SAMPLES=2)"
DIABLO_BENCH_SAMPLES=2 DIABLO_BENCH_JSON="${DIABLO_BENCH_JSON:-target/bench-smoke}" \
    cargo bench -q --offline --workspace

echo "CI OK"
