#!/bin/sh
# Offline CI gate: the workspace is hermetic (all deps are in-tree path
# crates), so everything below must pass from a cold registry.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test -q --offline (tier-1)"
cargo test -q --offline

echo "==> cargo test -q --release --offline --workspace"
cargo test -q --release --offline --workspace

echo "==> cargo doc --no-deps --offline --workspace (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "CI OK"
