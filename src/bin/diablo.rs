//! The `diablo` command-line interface.
//!
//! Mirrors the paper's §5.3 invocation style:
//!
//! ```text
//! diablo primary --port=5000 --chain=quorum --deployment=testnet \
//!     --secondaries=2 --output=results.json --csv=results.csv --stat \
//!     workload.yaml
//! diablo secondary --primary=127.0.0.1:5000 --tag=us-east-2
//! diablo run --chain=solana --deployment=devnet --stat workload.yaml
//! diablo run --live --chain=quorum --stat workload.yaml
//! ```
//!
//! `primary` serves the distributed TCP mode and waits for
//! `--secondaries=N` connections; `secondary` connects to a primary;
//! `run` executes the whole pipeline in-process (planning threads play
//! the secondaries), or — with `--live` — over real Secondary
//! processes, real sockets and wall-clock time, diffed against the
//! deterministic simulation of the same configuration.
//!
//! The flag surface is one declarative table (`diablo::cli`); the usage
//! text is generated from it and unknown flags are errors.
//!
//! Exit codes: `0` success, `1` failure, `2` non-transient connection
//! error (a Secondary given an unresolvable `--primary` address fails
//! fast instead of retrying).

use std::net::TcpListener;
use std::process::ExitCode;

use diablo::chains::Chain;
use diablo::cli::{usage_text, Invocation};
use diablo::core::analysis::{latency_cdf_dat, throughput_series_dat};
use diablo::core::json::read_result_stats;
use diablo::core::output::{results_csv, results_json_report};
use diablo::core::primary::run_with_setup;
use diablo::core::wire::{run_secondary_with_retry, serve_primary, SecondaryError};
use diablo::core::{run_local, run_live, BenchmarkOptions, Report, Setup};
use diablo::net::DeploymentKind;

/// Exit code for errors the retry policy must not paper over: a
/// non-transient connection failure (bad address).
const EXIT_NON_TRANSIENT: u8 = 2;

/// A command failure carrying its process exit code.
struct Failure {
    code: u8,
    message: String,
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure { code: 1, message }
    }
}

impl From<&str> for Failure {
    fn from(message: &str) -> Failure {
        Failure {
            code: 1,
            message: message.to_string(),
        }
    }
}

/// Builds the invocation's [`BenchmarkOptions`]: the CLI overlay plus
/// the Secondary count.
fn options(inv: &Invocation) -> Result<BenchmarkOptions, String> {
    let mut options = BenchmarkOptions {
        run: inv.overlay()?,
        ..BenchmarkOptions::default()
    };
    if let Some(n) = inv.get("secondaries") {
        options.secondaries = n.parse().map_err(|_| "bad --secondaries")?;
    }
    Ok(options)
}

fn parse_common(
    inv: &Invocation,
) -> Result<(Chain, DeploymentKind, BenchmarkOptions, String), String> {
    let chain = inv
        .get("chain")
        .ok_or("missing --chain")
        .and_then(|c| Chain::parse(c).ok_or("unknown chain"))?;
    let deployment = match inv.get("deployment") {
        Some(d) => DeploymentKind::parse(d).ok_or("unknown deployment")?,
        None => DeploymentKind::Testnet,
    };
    let options = options(inv)?;
    let spec_path = inv
        .positional
        .get(1)
        .ok_or("missing workload file")?
        .clone();
    Ok((chain, deployment, options, spec_path))
}

/// The workload name a spec path reports under.
fn workload_name(spec_path: &str) -> &str {
    spec_path
        .rsplit('/')
        .next()
        .unwrap_or(spec_path)
        .trim_end_matches(".yaml")
}

fn emit(report: &Report, inv: &Invocation) -> Result<(), String> {
    if let Some(path) = inv.get("output") {
        std::fs::write(path, results_json_report(report)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = inv.get("csv") {
        std::fs::write(path, results_csv(&report.result)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = inv.get("series") {
        std::fs::write(path, throughput_series_dat(&report.result)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = inv.get("cdf") {
        std::fs::write(path, latency_cdf_dat(&report.result, 500)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = inv.get("trace-out") {
        match &report.result.trace {
            Some(set) => {
                std::fs::write(path, set.to_chrome_json()).map_err(|e| e.to_string())?;
                eprintln!("wrote {path}");
            }
            // Tracing was requested but the recorder produced nothing —
            // the tracer was compiled out (`--cfg diablo_telemetry_off`).
            None => eprintln!(
                "warning: --trace-out={path} skipped (tracer compiled out of this binary)"
            ),
        }
    }
    if inv.has("stat") {
        print!("{}", report.stats_text());
    }
    Ok(())
}

fn cmd_run(inv: &Invocation) -> Result<(), Failure> {
    // With --setup=FILE, the chain and deployment come from the setup
    // file (the paper's two-file invocation); otherwise from flags.
    if let Some(setup_path) = inv.get("setup") {
        if inv.overlay()?.live.is_some() {
            return Err("--live needs --chain (setup files describe simulated endpoints)".into());
        }
        let setup_text =
            std::fs::read_to_string(setup_path).map_err(|e| format!("{setup_path}: {e}"))?;
        let setup = Setup::parse(&setup_text).map_err(|e| e.to_string())?;
        let options = options(inv)?;
        let spec_path = inv
            .positional
            .get(1)
            .ok_or("missing workload file")?
            .clone();
        let spec = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
        let report = run_with_setup(&setup, &spec, workload_name(&spec_path), &options)?;
        return Ok(emit(&report, inv)?);
    }
    let (chain, deployment, options, spec_path) = parse_common(inv)?;
    let spec = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let name = workload_name(&spec_path);
    let report = if options.run.live.is_some() {
        // Live mode: this very binary plays the Secondaries.
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        run_live(chain, deployment, &spec, name, &options, &exe)?
    } else {
        run_local(chain, deployment, &spec, name, &options)?
    };
    Ok(emit(&report, inv)?)
}

fn cmd_primary(inv: &Invocation) -> Result<(), Failure> {
    let (chain, deployment, options, spec_path) = parse_common(inv)?;
    let spec = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let name = workload_name(&spec_path);
    let port: u16 = inv
        .get("port")
        .unwrap_or("5000")
        .parse()
        .map_err(|_| "bad --port")?;
    let listener =
        TcpListener::bind(("0.0.0.0", port)).map_err(|e| format!("bind port {port}: {e}"))?;
    eprintln!(
        "primary listening on port {port}, waiting for {} secondaries",
        options.secondaries
    );
    let report = serve_primary(
        &listener,
        chain,
        deployment,
        &spec,
        name,
        &options,
        options.secondaries,
    )?;
    Ok(emit(&report, inv)?)
}

fn cmd_secondary(inv: &Invocation) -> Result<(), Failure> {
    let addr = inv.get("primary").ok_or("missing --primary=<addr>")?;
    let tag = inv.get("tag").unwrap_or("untagged");
    // The connect-retry policy shares the chaos `--retry` grammar.
    let retry = inv.overlay()?.faults.retry_policy();
    let stats = run_secondary_with_retry(addr, tag, &retry).map_err(|e| Failure {
        // A bad address is not retried and must not look like a flaky
        // network: it gets its own exit code (documented in README).
        code: match &e {
            SecondaryError::Connect(c) if !c.is_transient() => EXIT_NON_TRANSIENT,
            _ => 1,
        },
        message: e.to_string(),
    })?;
    println!("{stats}");
    Ok(())
}

fn cmd_compare(inv: &Invocation) -> Result<(), Failure> {
    let a_path = inv
        .positional
        .get(1)
        .ok_or("compare needs two results.json files")?;
    let b_path = inv
        .positional
        .get(2)
        .ok_or("compare needs two results.json files")?;
    let read = |p: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        read_result_stats(&text).map_err(|e| format!("{p}: {e}"))
    };
    let a = read(a_path)?;
    let b = read(b_path)?;
    println!("{:<16} {:>20} {:>20} {:>10}", "", a_path, b_path, "delta");
    println!("{:<16} {:>20} {:>20}", "chain", a.chain, b.chain);
    println!("{:<16} {:>20} {:>20}", "workload", a.workload, b.workload);
    println!(
        "{:<16} {:>20} {:>20} {:>+10}",
        "sent",
        a.sent,
        b.sent,
        b.sent as i64 - a.sent as i64
    );
    println!(
        "{:<16} {:>20} {:>20} {:>+10}",
        "committed",
        a.committed,
        b.committed,
        b.committed as i64 - a.committed as i64
    );
    println!(
        "{:<16} {:>20.1} {:>20.1} {:>+10.1}",
        "throughput TPS",
        a.avg_throughput,
        b.avg_throughput,
        b.avg_throughput - a.avg_throughput
    );
    println!(
        "{:<16} {:>20.2} {:>20.2} {:>+10.2}",
        "latency s",
        a.avg_latency,
        b.avg_latency,
        b.avg_latency - a.avg_latency
    );
    for (path, stats) in [(a_path, &a), (b_path, &b)] {
        if let Some(reason) = &stats.unable {
            println!("note: {path} was unable to run ({reason})");
        }
    }
    Ok(())
}

fn cmd_trace_diff(inv: &Invocation) -> Result<(), Failure> {
    let a_path = inv
        .positional
        .get(1)
        .ok_or("trace-diff needs two trace.json files")?;
    let b_path = inv
        .positional
        .get(2)
        .ok_or("trace-diff needs two trace.json files")?;
    let read =
        |p: &str| -> Result<String, String> { std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}")) };
    let d = diablo::core::tracediff::diff_texts(&read(a_path)?, &read(b_path)?)?;
    print!("{}", diablo::core::tracediff::render(&d));
    Ok(())
}

fn cmd_live_diff(inv: &Invocation) -> Result<(), Failure> {
    let live_path = inv
        .positional
        .get(1)
        .ok_or("live-diff needs a live and a sim results.json file")?;
    let sim_path = inv
        .positional
        .get(2)
        .ok_or("live-diff needs a live and a sim results.json file")?;
    let read =
        |p: &str| -> Result<String, String> { std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}")) };
    let d = diablo::core::livediff::diff_texts(&read(live_path)?, &read(sim_path)?)?;
    print!("{}", diablo::core::livediff::render(&d));
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let inv = match Invocation::parse(&argv) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("diablo: {e}");
            return ExitCode::FAILURE;
        }
    };
    if inv.has("help") {
        print!("{}", usage_text());
        return ExitCode::SUCCESS;
    }
    let Some(command) = inv.positional.first().map(String::as_str) else {
        eprint!("{}", usage_text());
        return ExitCode::FAILURE;
    };
    let result = match command {
        "run" => cmd_run(&inv),
        "primary" => cmd_primary(&inv),
        "secondary" => cmd_secondary(&inv),
        "compare" => cmd_compare(&inv),
        "trace-diff" => cmd_trace_diff(&inv),
        "live-diff" => cmd_live_diff(&inv),
        _ => {
            eprint!("{}", usage_text());
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("diablo {command}: {failure}", failure = failure.message);
            ExitCode::from(failure.code)
        }
    }
}
