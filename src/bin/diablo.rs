//! The `diablo` command-line interface.
//!
//! Mirrors the paper's §5.3 invocation style:
//!
//! ```text
//! diablo primary --port=5000 --chain=quorum --deployment=testnet \
//!     --secondaries=2 --output=results.json --csv=results.csv --stat \
//!     workload.yaml
//! diablo secondary --primary=127.0.0.1:5000 --tag=us-east-2
//! diablo run --chain=solana --deployment=devnet --stat workload.yaml
//! ```
//!
//! `primary` serves the distributed TCP mode and waits for
//! `--secondaries=N` connections; `secondary` connects to a primary;
//! `run` executes the whole pipeline in-process (planning threads play
//! the secondaries).

use std::net::TcpListener;
use std::process::ExitCode;

use diablo::chains::Chain;
use diablo::core::analysis::{latency_cdf_dat, throughput_series_dat};
use diablo::core::json::read_result_stats;
use diablo::core::output::{results_csv, results_json_with_telemetry};
use diablo::core::primary::run_with_setup;
use diablo::core::wire::{run_secondary, serve_primary};
use diablo::core::{run_local, BenchmarkOptions, Report, Setup};
use diablo::net::DeploymentKind;

struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        for arg in argv {
            if let Some(rest) = arg.strip_prefix("--") {
                match rest.split_once('=') {
                    Some((k, v)) => flags.push((k.to_string(), v.to_string())),
                    None => flags.push((rest.to_string(), "true".to_string())),
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Args { flags, positional }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Every value given for a repeatable flag, in invocation order
    /// (chaos flags like `--crash` may appear more than once).
    fn all(&self, key: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

/// The chaos flags: each maps to a `fault:` directive of the same name
/// ([`diablo::chains::chaos`]), so CLI and YAML share one grammar.
const CHAOS_FLAGS: [&str; 7] = [
    "crash",
    "partition",
    "loss",
    "corrupt",
    "slowdown",
    "kill-secondary",
    "retry",
];

/// Builds a fault plan from the invocation's chaos flags.
fn parse_chaos(args: &Args) -> Result<diablo::chains::FaultPlan, String> {
    let mut builder = diablo::chains::FaultPlan::builder();
    for key in CHAOS_FLAGS {
        for value in args.all(key) {
            builder = diablo::chains::chaos::apply_directive(builder, key, value)?;
        }
    }
    Ok(builder.build())
}

/// Resolves the execution flags (`--threads=N`, `--optimistic`,
/// `--execution=MODE`) into a block-commit concurrency. Both parallel
/// executors are bit-identical to serial (see `docs/EXECUTION.md`), so
/// these flags change wall-clock time, never results.
fn parse_concurrency(args: &Args) -> Result<diablo::chains::Concurrency, String> {
    let threads = match args.get("threads") {
        Some(n) => Some(
            n.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("bad --threads")?,
        ),
        None => None,
    };
    let mode = match (args.get("execution"), args.has("optimistic")) {
        (Some(_), true) => return Err("--execution and --optimistic are exclusive".into()),
        (Some(mode), false) => Some(mode),
        (None, true) => Some("optimistic"),
        // --threads alone selects the static parallel scheduler.
        (None, false) => threads.is_some().then_some("parallel"),
    };
    let Some(mode) = mode else {
        return Ok(diablo::chains::Concurrency::Serial);
    };
    diablo::chains::Concurrency::from_mode(mode, threads.unwrap_or(4))
        .ok_or_else(|| format!("bad --execution={mode} (serial | parallel | optimistic)"))
}

/// Resolves the storage flags (`--store`, `--prune=MODE`,
/// `--segment-blocks=N`, `--hot-pages=N`) into a state-store
/// configuration. `--prune`/`--segment-blocks`/`--hot-pages` imply
/// `--store`; no storage flag at all defers to the spec's `storage:`
/// section (and then to no store).
fn parse_storage_flags(args: &Args) -> Result<Option<diablo::chains::StorageConfig>, String> {
    let tuning =
        args.has("prune") || args.has("segment-blocks") || args.has("hot-pages");
    if !args.has("store") && !tuning {
        return Ok(None);
    }
    let mut config = diablo::chains::StorageConfig::default();
    if let Some(mode) = args.get("prune") {
        config.prune =
            diablo::chains::PruneMode::parse(mode).map_err(|e| format!("bad --prune: {e}"))?;
    }
    if let Some(n) = args.get("segment-blocks") {
        config.segment_blocks = n
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or("bad --segment-blocks")?;
    }
    if let Some(n) = args.get("hot-pages") {
        config.hot_pages = n.parse::<usize>().map_err(|_| "bad --hot-pages")?;
    }
    Ok(Some(config))
}

/// Resolves the tracing flags (`--trace-sample=N|all`, `--trace-out`)
/// into a sampling budget. `--trace-out` alone implies tracing at the
/// default reservoir limit; no tracing flag keeps the tracer off (and
/// the run byte-identical to an untraced one).
fn parse_trace_flags(
    args: &Args,
) -> Result<Option<diablo::telemetry::trace::TraceSample>, String> {
    use diablo::telemetry::trace::TraceSample;
    match args.get("trace-sample") {
        Some(value) => TraceSample::parse(value)
            .map(Some)
            .map_err(|e| format!("bad --trace-sample: {e}")),
        None if args.has("trace-out") => Ok(Some(TraceSample::Limit(TraceSample::DEFAULT_LIMIT))),
        None => Ok(None),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  diablo run --chain=<name> [--deployment=<name>] [--secondaries=N] \
         [--seed=N] [--threads=N] [--optimistic] [--output=FILE] [--csv=FILE] \
         [--series=FILE] [--cdf=FILE] [--stat] [chaos flags] <workload.yaml>\n  \
         diablo primary --secondaries=N --chain=<name> [--port=P] [--deployment=<name>] \
         [--output=FILE] [--csv=FILE] [--stat] [chaos flags] <workload.yaml>\n  \
         diablo secondary --primary=<addr> [--tag=<zone>]\n  \
         diablo compare <a.results.json> <b.results.json>\n  \
         diablo trace-diff <a.trace.json> <b.trace.json>\n\n\
         tracing flags (deterministic per-transaction lifecycle traces,\n\
         see docs/TRACING.md):\n  \
         --trace-sample=N|all             trace the N deterministically sampled\n                                   \
         transactions (or every one); same N + seed\n                                   \
         traces the same transactions in any run\n  \
         --trace-out=FILE                 write the traces as Chrome Trace Event JSON\n                                   \
         (load in Perfetto; implies --trace-sample={})\n\n\
         execution flags (same grammar as the spec's `execution:` section; results\n\
         are bit-identical to serial at any thread count, see docs/EXECUTION.md):\n  \
         --threads=N                      block-commit worker threads (static scheduler)\n  \
         --optimistic                     Block-STM-style speculation (handles dynamic\n                                   \
         footprints; combine with --threads=N, default 4)\n  \
         --execution=MODE                 serial | parallel | optimistic\n  \
         --exact                          exact execution mode (interpret every call;\n                                   \
         required for the block executors to engage)\n\n\
         storage flags (same grammar as the spec's `storage:` section; roots are\n\
         identical at every prune mode, see docs/STORAGE.md):\n  \
         --store                          persist blocks/receipts/state in the staged\n                                   \
         commit pipeline (execute-merkleize-persist-prune)\n  \
         --prune=MODE                     full | distance=N | before=N (implies --store)\n  \
         --segment-blocks=N               blocks per static-file segment (implies --store)\n  \
         --hot-pages=N                    decoded-page cap of the flat account/storage\n                                   \
         tables (implies --store)\n\n\
         chaos flags (repeatable; same grammar as the spec's `fault:` section):\n  \
         --crash=NODES@AT[..RECOVER]      crash nodes, optionally recovering\n  \
         --partition=GRP/GRP@FROM..UNTIL  split the network into components\n  \
         --loss=RATE@FROM..UNTIL[,link=A-B]  drop consensus messages\n  \
         --corrupt=RATE@FROM..UNTIL       corrupt client submissions\n  \
         --slowdown=FACTOR@AT             stretch network delays\n  \
         --kill-secondary=IDX@AT          kill a load-generating worker\n  \
         --retry=ATTEMPTSxBACKOFF_MS/TIMEOUT_MS  client retry policy\n\n\
         chains: {}\ndeployments: {}",
        diablo::telemetry::trace::TraceSample::DEFAULT_LIMIT,
        Chain::ALL.map(|c| c.name().to_lowercase()).join(", "),
        DeploymentKind::ALL.map(|d| d.name()).join(", ")
    );
    ExitCode::FAILURE
}

fn parse_common(args: &Args) -> Result<(Chain, DeploymentKind, BenchmarkOptions, String), String> {
    let chain = args
        .get("chain")
        .ok_or("missing --chain")
        .and_then(|c| Chain::parse(c).ok_or("unknown chain"))?;
    let deployment = match args.get("deployment") {
        Some(d) => DeploymentKind::parse(d).ok_or("unknown deployment")?,
        None => DeploymentKind::Testnet,
    };
    let mut options = BenchmarkOptions::default();
    if let Some(n) = args.get("secondaries") {
        options.secondaries = n.parse().map_err(|_| "bad --secondaries")?;
    }
    if let Some(s) = args.get("seed") {
        options.seed = s.parse().map_err(|_| "bad --seed")?;
    }
    if args.has("exact") {
        options.exec_mode = diablo::chains::ExecMode::Exact;
    }
    options.concurrency = parse_concurrency(args)?;
    options.faults = parse_chaos(args)?;
    options.storage = parse_storage_flags(args)?;
    options.trace = parse_trace_flags(args)?;
    let spec_path = args
        .positional
        .get(1)
        .ok_or("missing workload file")?
        .clone();
    Ok((chain, deployment, options, spec_path))
}

fn emit(report: &Report, args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("output") {
        std::fs::write(path, results_json_with_telemetry(&report.result, &report.telemetry))
            .map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, results_csv(&report.result)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("series") {
        std::fs::write(path, throughput_series_dat(&report.result)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("cdf") {
        std::fs::write(path, latency_cdf_dat(&report.result, 500)).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("trace-out") {
        match &report.result.trace {
            Some(set) => {
                std::fs::write(path, set.to_chrome_json()).map_err(|e| e.to_string())?;
                eprintln!("wrote {path}");
            }
            // Tracing was requested but the recorder produced nothing —
            // the tracer was compiled out (`--cfg diablo_telemetry_off`).
            None => eprintln!(
                "warning: --trace-out={path} skipped (tracer compiled out of this binary)"
            ),
        }
    }
    if args.has("stat") {
        print!("{}", report.stats_text());
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    // With --setup=FILE, the chain and deployment come from the setup
    // file (the paper's two-file invocation); otherwise from flags.
    if let Some(setup_path) = args.get("setup") {
        let setup_text =
            std::fs::read_to_string(setup_path).map_err(|e| format!("{setup_path}: {e}"))?;
        let setup = Setup::parse(&setup_text).map_err(|e| e.to_string())?;
        let mut options = BenchmarkOptions::default();
        if let Some(n) = args.get("secondaries") {
            options.secondaries = n.parse().map_err(|_| "bad --secondaries")?;
        }
        if let Some(seed) = args.get("seed") {
            options.seed = seed.parse().map_err(|_| "bad --seed")?;
        }
        if args.has("exact") {
            options.exec_mode = diablo::chains::ExecMode::Exact;
        }
        options.concurrency = parse_concurrency(args)?;
        options.faults = parse_chaos(args)?;
        options.storage = parse_storage_flags(args)?;
        options.trace = parse_trace_flags(args)?;
        let spec_path = args
            .positional
            .get(1)
            .ok_or("missing workload file")?
            .clone();
        let spec = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
        let name = spec_path
            .rsplit('/')
            .next()
            .unwrap_or(&spec_path)
            .trim_end_matches(".yaml");
        let report = run_with_setup(&setup, &spec, name, &options)?;
        return emit(&report, args);
    }
    let (chain, deployment, options, spec_path) = parse_common(args)?;
    let spec = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let name = spec_path
        .rsplit('/')
        .next()
        .unwrap_or(&spec_path)
        .trim_end_matches(".yaml");
    let report = run_local(chain, deployment, &spec, name, &options)?;
    emit(&report, args)
}

fn cmd_primary(args: &Args) -> Result<(), String> {
    let (chain, deployment, options, spec_path) = parse_common(args)?;
    let spec = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let name = spec_path
        .rsplit('/')
        .next()
        .unwrap_or(&spec_path)
        .trim_end_matches(".yaml");
    let port: u16 = args
        .get("port")
        .unwrap_or("5000")
        .parse()
        .map_err(|_| "bad --port")?;
    let listener =
        TcpListener::bind(("0.0.0.0", port)).map_err(|e| format!("bind port {port}: {e}"))?;
    eprintln!(
        "primary listening on port {port}, waiting for {} secondaries",
        options.secondaries
    );
    let report = serve_primary(
        &listener,
        chain,
        deployment,
        &spec,
        name,
        &options,
        options.secondaries,
    )?;
    emit(&report, args)
}

fn cmd_secondary(args: &Args) -> Result<(), String> {
    let addr = args.get("primary").ok_or("missing --primary=<addr>")?;
    let tag = args.get("tag").unwrap_or("untagged");
    let stats = run_secondary(addr, tag)?;
    println!("{stats}");
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let a_path = args
        .positional
        .get(1)
        .ok_or("compare needs two results.json files")?;
    let b_path = args
        .positional
        .get(2)
        .ok_or("compare needs two results.json files")?;
    let read = |p: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
        read_result_stats(&text).map_err(|e| format!("{p}: {e}"))
    };
    let a = read(a_path)?;
    let b = read(b_path)?;
    println!("{:<16} {:>20} {:>20} {:>10}", "", a_path, b_path, "delta");
    println!("{:<16} {:>20} {:>20}", "chain", a.chain, b.chain);
    println!("{:<16} {:>20} {:>20}", "workload", a.workload, b.workload);
    println!(
        "{:<16} {:>20} {:>20} {:>+10}",
        "sent",
        a.sent,
        b.sent,
        b.sent as i64 - a.sent as i64
    );
    println!(
        "{:<16} {:>20} {:>20} {:>+10}",
        "committed",
        a.committed,
        b.committed,
        b.committed as i64 - a.committed as i64
    );
    println!(
        "{:<16} {:>20.1} {:>20.1} {:>+10.1}",
        "throughput TPS",
        a.avg_throughput,
        b.avg_throughput,
        b.avg_throughput - a.avg_throughput
    );
    println!(
        "{:<16} {:>20.2} {:>20.2} {:>+10.2}",
        "latency s",
        a.avg_latency,
        b.avg_latency,
        b.avg_latency - a.avg_latency
    );
    for (path, stats) in [(a_path, &a), (b_path, &b)] {
        if let Some(reason) = &stats.unable {
            println!("note: {path} was unable to run ({reason})");
        }
    }
    Ok(())
}

fn cmd_trace_diff(args: &Args) -> Result<(), String> {
    let a_path = args
        .positional
        .get(1)
        .ok_or("trace-diff needs two trace.json files")?;
    let b_path = args
        .positional
        .get(2)
        .ok_or("trace-diff needs two trace.json files")?;
    let read = |p: &str| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))
    };
    let d = diablo::core::tracediff::diff_texts(&read(a_path)?, &read(b_path)?)?;
    print!("{}", diablo::core::tracediff::render(&d));
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv);
    let Some(command) = args.positional.first().map(String::as_str) else {
        return usage();
    };
    let result = match command {
        "run" => cmd_run(&args),
        "primary" => cmd_primary(&args),
        "secondary" => cmd_secondary(&args),
        "compare" => cmd_compare(&args),
        "trace-diff" => cmd_trace_diff(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("diablo {command}: {e}");
            ExitCode::FAILURE
        }
    }
}
