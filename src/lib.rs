//! Diablo-rs: a Rust reproduction of *DIABLO: A Benchmark Suite for
//! Blockchains* (EuroSys 2023).
//!
//! This facade crate re-exports the workspace crates so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! - [`sim`] — deterministic discrete-event simulation kernel,
//! - [`telemetry`] — deterministic counters, histograms and spans,
//! - [`net`] — geo-distributed network and deployment configurations,
//! - [`vm`] — gas-metered smart-contract virtual machine (4 flavors),
//! - [`contracts`] — the five DApps of the paper plus native transfers,
//! - [`chains`] — the six simulated blockchains,
//! - [`workloads`] — realistic and synthetic workload generators,
//! - [`core`] — the Diablo framework: primary/secondary roles, workload
//!   specification language, blockchain abstraction and metrics.

pub mod cli;

pub use diablo_chains as chains;
pub use diablo_contracts as contracts;
pub use diablo_core as core;
pub use diablo_net as net;
pub use diablo_sim as sim;
pub use diablo_telemetry as telemetry;
pub use diablo_vm as vm;
pub use diablo_workloads as workloads;
