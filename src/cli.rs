//! The declarative command-line surface of the `diablo` binary.
//!
//! Every flag the binary accepts is one row of [`FLAGS`]: its name, its
//! value shape, the group it is documented under, whether it repeats,
//! and — for flags kept only for compatibility — what replaces it.
//! Parsing ([`Invocation::parse`]) validates against the table (unknown
//! flags are errors, not silently ignored), the usage text
//! ([`usage_text`]) is generated from the same table, and
//! [`Invocation::overlay`] turns the flags into the invocation's
//! [`RunOverlay`] — the CLI layer of the one resolution rule
//! `defaults ← spec ← CLI` (see `diablo_chains::RunConfig`).

use diablo_chains::{Concurrency, ExecMode, LiveConfig, RunOverlay};
use diablo_sim::QueueBackend;
use diablo_telemetry::trace::TraceSample;

/// What kind of value a flag takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagKind {
    /// A bare switch: `--stat`.
    Switch,
    /// A value flag: `--seed=N`. The string is the usage placeholder.
    Value(&'static str),
}

/// The section a flag is documented under in the generated usage text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagGroup {
    /// Chain/deployment selection and run-wide knobs.
    Common,
    /// Block-commit execution (threads, scheduler, fidelity).
    Execution,
    /// The staged commit pipeline (state store).
    Storage,
    /// Per-transaction lifecycle tracing.
    Tracing,
    /// Fault injection (chaos flags).
    Chaos,
    /// Wall-clock (live) mode.
    Live,
    /// Report emission.
    Output,
    /// Distributed (TCP) mode.
    Net,
}

impl FlagGroup {
    fn title(self) -> &'static str {
        match self {
            FlagGroup::Common => "common flags",
            FlagGroup::Execution => {
                "execution flags (same grammar as the spec's `execution:` section; \
                 results\nare bit-identical to serial at any thread count, see \
                 docs/EXECUTION.md)"
            }
            FlagGroup::Storage => {
                "storage flags (same grammar as the spec's `storage:` section; roots \
                 are\nidentical at every prune mode, see docs/STORAGE.md)"
            }
            FlagGroup::Tracing => {
                "tracing flags (deterministic per-transaction lifecycle traces, see \
                 docs/TRACING.md)"
            }
            FlagGroup::Chaos => {
                "chaos flags (repeatable; same grammar as the spec's `fault:` section)"
            }
            FlagGroup::Live => {
                "live flags (wall-clock mode over real processes and sockets, see \
                 docs/LIVE.md)"
            }
            FlagGroup::Output => "output flags",
            FlagGroup::Net => "distributed-mode flags",
        }
    }

    const ALL: [FlagGroup; 8] = [
        FlagGroup::Common,
        FlagGroup::Execution,
        FlagGroup::Storage,
        FlagGroup::Tracing,
        FlagGroup::Chaos,
        FlagGroup::Live,
        FlagGroup::Output,
        FlagGroup::Net,
    ];
}

/// One row of the flag table.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Flag name, without the leading `--`.
    pub name: &'static str,
    /// Switch or value (with its usage placeholder).
    pub kind: FlagKind,
    /// Usage-text section.
    pub group: FlagGroup,
    /// Whether the flag may appear more than once (chaos directives).
    pub repeatable: bool,
    /// `Some(replacement)` marks a deprecated alias: still honored, but
    /// parsing warns once and the usage text points at the replacement.
    pub deprecated: Option<&'static str>,
    /// One-line help.
    pub help: &'static str,
}

const fn flag(
    name: &'static str,
    kind: FlagKind,
    group: FlagGroup,
    help: &'static str,
) -> FlagSpec {
    FlagSpec {
        name,
        kind,
        group,
        repeatable: false,
        deprecated: None,
        help,
    }
}

/// Every flag the binary accepts, in documentation order.
pub const FLAGS: &[FlagSpec] = &[
    // Common.
    flag(
        "chain",
        FlagKind::Value("NAME"),
        FlagGroup::Common,
        "blockchain under test (required unless --setup)",
    ),
    flag(
        "deployment",
        FlagKind::Value("NAME"),
        FlagGroup::Common,
        "deployment scenario (default: testnet)",
    ),
    flag(
        "setup",
        FlagKind::Value("FILE"),
        FlagGroup::Common,
        "setup file naming the chain and endpoints (the paper's two-file invocation)",
    ),
    flag(
        "secondaries",
        FlagKind::Value("N"),
        FlagGroup::Common,
        "number of load-generating Secondaries (default: 2)",
    ),
    flag(
        "seed",
        FlagKind::Value("N"),
        FlagGroup::Common,
        "RNG seed of the run (default: 42)",
    ),
    flag(
        "grace",
        FlagKind::Value("SECS"),
        FlagGroup::Common,
        "drain window after the last submission (default: 60)",
    ),
    flag(
        "queue",
        FlagKind::Value("wheel|heap"),
        FlagGroup::Common,
        "event-queue backend of the simulation kernel (default: wheel)",
    ),
    flag(
        "help",
        FlagKind::Switch,
        FlagGroup::Common,
        "print this usage text",
    ),
    // Execution.
    flag(
        "exec-mode",
        FlagKind::Value("profiled|exact"),
        FlagGroup::Execution,
        "execution fidelity; exact interprets every call (required for the block \
         executors to engage)",
    ),
    FlagSpec {
        name: "exact",
        kind: FlagKind::Switch,
        group: FlagGroup::Execution,
        repeatable: false,
        deprecated: Some("--exec-mode=exact"),
        help: "exact execution mode",
    },
    flag(
        "threads",
        FlagKind::Value("N"),
        FlagGroup::Execution,
        "block-commit worker threads (alone selects the static parallel scheduler)",
    ),
    flag(
        "execution",
        FlagKind::Value("MODE"),
        FlagGroup::Execution,
        "serial | parallel | optimistic",
    ),
    FlagSpec {
        name: "optimistic",
        kind: FlagKind::Switch,
        group: FlagGroup::Execution,
        repeatable: false,
        deprecated: Some("--execution=optimistic"),
        help: "Block-STM-style speculation",
    },
    // Storage.
    flag(
        "store",
        FlagKind::Switch,
        FlagGroup::Storage,
        "persist blocks/receipts/state in the staged commit pipeline",
    ),
    flag(
        "prune",
        FlagKind::Value("MODE"),
        FlagGroup::Storage,
        "full | distance=N | before=N (implies --store)",
    ),
    flag(
        "segment-blocks",
        FlagKind::Value("N"),
        FlagGroup::Storage,
        "blocks per static-file segment (implies --store)",
    ),
    flag(
        "hot-pages",
        FlagKind::Value("N"),
        FlagGroup::Storage,
        "decoded-page cap of the flat account/storage tables (implies --store)",
    ),
    // Tracing.
    flag(
        "trace-sample",
        FlagKind::Value("N|all"),
        FlagGroup::Tracing,
        "trace the N deterministically sampled transactions (or every one)",
    ),
    flag(
        "trace-out",
        FlagKind::Value("FILE"),
        FlagGroup::Tracing,
        "write the traces as Chrome Trace Event JSON (implies --trace-sample)",
    ),
    // Chaos (repeatable).
    FlagSpec {
        name: "crash",
        kind: FlagKind::Value("NODES@AT[..RECOVER]"),
        group: FlagGroup::Chaos,
        repeatable: true,
        deprecated: None,
        help: "crash nodes, optionally recovering",
    },
    FlagSpec {
        name: "partition",
        kind: FlagKind::Value("GRP/GRP@FROM..UNTIL"),
        group: FlagGroup::Chaos,
        repeatable: true,
        deprecated: None,
        help: "split the network into components",
    },
    FlagSpec {
        name: "loss",
        kind: FlagKind::Value("RATE@FROM..UNTIL"),
        group: FlagGroup::Chaos,
        repeatable: true,
        deprecated: None,
        help: "drop consensus messages (optionally ,link=A-B)",
    },
    FlagSpec {
        name: "corrupt",
        kind: FlagKind::Value("RATE@FROM..UNTIL"),
        group: FlagGroup::Chaos,
        repeatable: true,
        deprecated: None,
        help: "corrupt client submissions",
    },
    FlagSpec {
        name: "slowdown",
        kind: FlagKind::Value("FACTOR@AT"),
        group: FlagGroup::Chaos,
        repeatable: true,
        deprecated: None,
        help: "stretch network delays",
    },
    FlagSpec {
        name: "kill-secondary",
        kind: FlagKind::Value("IDX@AT"),
        group: FlagGroup::Chaos,
        repeatable: true,
        deprecated: None,
        help: "kill a load-generating worker",
    },
    FlagSpec {
        name: "retry",
        kind: FlagKind::Value("AxB_MS/T_MS"),
        group: FlagGroup::Chaos,
        repeatable: true,
        deprecated: None,
        help: "client retry policy (attempts x backoff / timeout)",
    },
    // Live.
    flag(
        "live",
        FlagKind::Switch,
        FlagGroup::Live,
        "run over real processes, sockets and wall-clock time, then diff against \
         the deterministic simulation of the same configuration",
    ),
    flag(
        "time-scale",
        FlagKind::Value("F"),
        FlagGroup::Live,
        "simulated seconds per wall second (implies --live; default: 1.0)",
    ),
    flag(
        "live-workers",
        FlagKind::Value("N"),
        FlagGroup::Live,
        "signature-verification worker threads (implies --live; default: 4)",
    ),
    // Output.
    flag(
        "output",
        FlagKind::Value("FILE"),
        FlagGroup::Output,
        "write the results JSON",
    ),
    flag(
        "csv",
        FlagKind::Value("FILE"),
        FlagGroup::Output,
        "write the per-transaction CSV",
    ),
    flag(
        "series",
        FlagKind::Value("FILE"),
        FlagGroup::Output,
        "write the throughput time series (gnuplot .dat)",
    ),
    flag(
        "cdf",
        FlagKind::Value("FILE"),
        FlagGroup::Output,
        "write the latency CDF (gnuplot .dat)",
    ),
    flag(
        "stat",
        FlagKind::Switch,
        FlagGroup::Output,
        "print the statistics block to standard output",
    ),
    // Net.
    flag(
        "port",
        FlagKind::Value("P"),
        FlagGroup::Net,
        "primary: TCP port to listen on (default: 5000)",
    ),
    flag(
        "primary",
        FlagKind::Value("ADDR"),
        FlagGroup::Net,
        "secondary: address of the primary",
    ),
    flag(
        "tag",
        FlagKind::Value("ZONE"),
        FlagGroup::Net,
        "secondary: location tag (default: untagged)",
    ),
];

/// Looks a flag up in the table.
pub fn flag_spec(name: &str) -> Option<&'static FlagSpec> {
    FLAGS.iter().find(|f| f.name == name)
}

/// A parsed, table-validated invocation.
#[derive(Debug, Clone, Default)]
pub struct Invocation {
    /// `(flag, value)` pairs in invocation order; switches carry "true".
    pub flags: Vec<(String, String)>,
    /// Positional arguments (the subcommand and its file operands).
    pub positional: Vec<String>,
}

impl Invocation {
    /// Parses and validates `argv` (without the program name) against
    /// the flag table. Unknown flags, switches given values and value
    /// flags missing them are errors; deprecated aliases warn on
    /// standard error but parse.
    pub fn parse(argv: &[String]) -> Result<Invocation, String> {
        let mut inv = Invocation::default();
        let mut warned: Vec<&'static str> = Vec::new();
        for arg in argv {
            let Some(rest) = arg.strip_prefix("--") else {
                inv.positional.push(arg.clone());
                continue;
            };
            let (key, value) = match rest.split_once('=') {
                Some((k, v)) => (k, Some(v)),
                None => (rest, None),
            };
            let spec = flag_spec(key)
                .ok_or_else(|| format!("unknown flag --{key} (see `diablo --help`)"))?;
            let value = match (spec.kind, value) {
                (FlagKind::Switch, None) => "true".to_string(),
                (FlagKind::Switch, Some(_)) => {
                    return Err(format!("--{key} takes no value"));
                }
                (FlagKind::Value(placeholder), None) => {
                    return Err(format!("--{key} needs a value: --{key}={placeholder}"));
                }
                (FlagKind::Value(_), Some(v)) => v.to_string(),
            };
            if let Some(replacement) = spec.deprecated {
                if !warned.contains(&spec.name) {
                    eprintln!("warning: --{key} is deprecated; use {replacement}");
                    warned.push(spec.name);
                }
            }
            inv.flags.push((key.to_string(), value));
        }
        Ok(inv)
    }

    /// The last value given for `key`, if any (last wins, like the
    /// original parser).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether `key` was given at all.
    pub fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Every value given for a repeatable flag, in invocation order.
    pub fn all(&self, key: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Builds the invocation's [`RunOverlay`]: the CLI layer of the
    /// resolution `defaults ← spec ← CLI`. A flag that was not given
    /// leaves its field unset, deferring to the spec (and the defaults
    /// below it).
    pub fn overlay(&self) -> Result<RunOverlay, String> {
        let mut o = RunOverlay::none();
        if let Some(s) = self.get("seed") {
            o.seed = Some(s.parse().map_err(|_| "bad --seed")?);
        }
        o.exec_mode = self.parse_exec_mode()?;
        o.concurrency = self.parse_concurrency()?;
        if let Some(g) = self.get("grace") {
            o.grace_secs = Some(g.parse().map_err(|_| "bad --grace")?);
        }
        o.faults = self.parse_chaos()?;
        if let Some(q) = self.get("queue") {
            o.queue = Some(match q {
                "wheel" => QueueBackend::Wheel,
                "heap" => QueueBackend::Heap,
                other => return Err(format!("bad --queue={other} (wheel | heap)")),
            });
        }
        o.storage = self.parse_storage()?;
        o.trace = self.parse_trace()?;
        o.live = self.parse_live()?;
        Ok(o)
    }

    fn parse_exec_mode(&self) -> Result<Option<ExecMode>, String> {
        match self.get("exec-mode") {
            Some("profiled") => Ok(Some(ExecMode::Profiled)),
            Some("exact") => Ok(Some(ExecMode::Exact)),
            Some(other) => Err(format!("bad --exec-mode={other} (profiled | exact)")),
            // The deprecated alias.
            None if self.has("exact") => Ok(Some(ExecMode::Exact)),
            None => Ok(None),
        }
    }

    /// Resolves the execution flags (`--threads=N`, `--optimistic`,
    /// `--execution=MODE`) into a block-commit concurrency; `None` when
    /// no execution flag was given (the spec's `execution:` section
    /// then decides).
    fn parse_concurrency(&self) -> Result<Option<Concurrency>, String> {
        let threads = match self.get("threads") {
            Some(n) => Some(
                n.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("bad --threads")?,
            ),
            None => None,
        };
        let mode = match (self.get("execution"), self.has("optimistic")) {
            (Some(_), true) => return Err("--execution and --optimistic are exclusive".into()),
            (Some(mode), false) => Some(mode),
            (None, true) => Some("optimistic"),
            // --threads alone selects the static parallel scheduler.
            (None, false) => threads.is_some().then_some("parallel"),
        };
        let Some(mode) = mode else {
            return Ok(None);
        };
        Concurrency::from_mode(mode, threads.unwrap_or(4))
            .map(Some)
            .ok_or_else(|| format!("bad --execution={mode} (serial | parallel | optimistic)"))
    }

    /// Builds the invocation's fault layer from the chaos flags; each
    /// maps to a `fault:` directive of the same name
    /// (`diablo_chains::chaos`), so CLI and YAML share one grammar.
    fn parse_chaos(&self) -> Result<diablo_chains::FaultPlan, String> {
        let mut builder = diablo_chains::FaultPlan::builder();
        for spec in FLAGS.iter().filter(|f| f.group == FlagGroup::Chaos) {
            for value in self.all(spec.name) {
                builder = diablo_chains::chaos::apply_directive(builder, spec.name, value)?;
            }
        }
        Ok(builder.build())
    }

    /// Resolves the storage flags; `--prune`/`--segment-blocks`/
    /// `--hot-pages` imply `--store`, and no storage flag at all defers
    /// to the spec's `storage:` section.
    fn parse_storage(&self) -> Result<Option<diablo_chains::StorageConfig>, String> {
        let tuning = self.has("prune") || self.has("segment-blocks") || self.has("hot-pages");
        if !self.has("store") && !tuning {
            return Ok(None);
        }
        let mut config = diablo_chains::StorageConfig::default();
        if let Some(mode) = self.get("prune") {
            config.prune =
                diablo_chains::PruneMode::parse(mode).map_err(|e| format!("bad --prune: {e}"))?;
        }
        if let Some(n) = self.get("segment-blocks") {
            config.segment_blocks = n
                .parse::<u64>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("bad --segment-blocks")?;
        }
        if let Some(n) = self.get("hot-pages") {
            config.hot_pages = n.parse::<usize>().map_err(|_| "bad --hot-pages")?;
        }
        Ok(Some(config))
    }

    /// Resolves the tracing flags; `--trace-out` alone implies tracing
    /// at the default reservoir limit, and no tracing flag keeps the
    /// tracer off (byte-identical to an untraced run).
    fn parse_trace(&self) -> Result<Option<TraceSample>, String> {
        match self.get("trace-sample") {
            Some(value) => TraceSample::parse(value)
                .map(Some)
                .map_err(|e| format!("bad --trace-sample: {e}")),
            None if self.has("trace-out") => {
                Ok(Some(TraceSample::Limit(TraceSample::DEFAULT_LIMIT)))
            }
            None => Ok(None),
        }
    }

    /// Resolves the live flags; `--time-scale`/`--live-workers` imply
    /// `--live`, and no live flag keeps the run a pure simulation
    /// (byte-identical to pre-live builds).
    fn parse_live(&self) -> Result<Option<LiveConfig>, String> {
        let tuning = self.has("time-scale") || self.has("live-workers");
        if !self.has("live") && !tuning {
            return Ok(None);
        }
        let mut config = LiveConfig::default();
        if let Some(f) = self.get("time-scale") {
            config.time_scale = f
                .parse::<f64>()
                .ok()
                .filter(|f| f.is_finite() && *f > 0.0)
                .ok_or("bad --time-scale")?;
        }
        if let Some(n) = self.get("live-workers") {
            config.workers = n
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("bad --live-workers")?;
        }
        Ok(Some(config))
    }
}

/// The usage text, generated from the command synopses and [`FLAGS`].
pub fn usage_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "usage:\n  \
         diablo run --chain=<name> [flags] <workload.yaml>\n  \
         diablo run --live --chain=<name> [flags] <workload.yaml>\n  \
         diablo primary --secondaries=N --chain=<name> [flags] <workload.yaml>\n  \
         diablo secondary --primary=<addr> [--tag=<zone>]\n  \
         diablo compare <a.results.json> <b.results.json>\n  \
         diablo trace-diff <a.trace.json> <b.trace.json>\n  \
         diablo live-diff <live.results.json> <sim.results.json>\n",
    );
    for group in FlagGroup::ALL {
        let rows: Vec<&FlagSpec> = FLAGS.iter().filter(|f| f.group == group).collect();
        if rows.is_empty() {
            continue;
        }
        let _ = write!(out, "\n{}:\n", group.title());
        for f in rows {
            let lhs = match f.kind {
                FlagKind::Switch => format!("--{}", f.name),
                FlagKind::Value(placeholder) => format!("--{}={placeholder}", f.name),
            };
            let help = match f.deprecated {
                Some(replacement) => format!("{} (deprecated; use {replacement})", f.help),
                None => f.help.to_string(),
            };
            let _ = writeln!(out, "  {lhs:<33} {help}");
        }
    }
    let _ = write!(
        out,
        "\nchains: {}\ndeployments: {}\n",
        diablo_chains::Chain::ALL
            .map(|c| c.name().to_lowercase())
            .join(", "),
        diablo_net::DeploymentKind::ALL.map(|d| d.name()).join(", ")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_flags_are_errors() {
        let err = Invocation::parse(&args(&["run", "--sed=7"])).unwrap_err();
        assert!(err.contains("unknown flag --sed"), "{err}");
    }

    #[test]
    fn value_flags_need_values_and_switches_refuse_them() {
        let err = Invocation::parse(&args(&["run", "--seed"])).unwrap_err();
        assert!(err.contains("--seed=N"), "{err}");
        let err = Invocation::parse(&args(&["run", "--stat=yes"])).unwrap_err();
        assert!(err.contains("takes no value"), "{err}");
    }

    #[test]
    fn unflagged_invocation_builds_the_empty_overlay() {
        let inv = Invocation::parse(&args(&["run", "w.yaml"])).unwrap();
        assert_eq!(inv.overlay().unwrap(), RunOverlay::none());
        assert_eq!(inv.positional, vec!["run", "w.yaml"]);
    }

    #[test]
    fn every_run_knob_has_a_flag() {
        let inv = Invocation::parse(&args(&[
            "run",
            "--seed=7",
            "--exec-mode=exact",
            "--execution=parallel",
            "--threads=8",
            "--grace=5",
            "--queue=heap",
            "--store",
            "--trace-sample=16",
            "--live",
            "--time-scale=10",
            "--live-workers=2",
            "--kill-secondary=1@3",
        ]))
        .unwrap();
        let o = inv.overlay().unwrap();
        assert_eq!(o.seed, Some(7));
        assert_eq!(o.exec_mode, Some(ExecMode::Exact));
        assert_eq!(o.concurrency, Some(Concurrency::Parallel(8)));
        assert_eq!(o.grace_secs, Some(5));
        assert_eq!(o.queue, Some(QueueBackend::Heap));
        assert!(o.storage.is_some());
        assert_eq!(o.trace, Some(TraceSample::Limit(16)));
        assert_eq!(
            o.live,
            Some(LiveConfig {
                time_scale: 10.0,
                workers: 2
            })
        );
        assert!(o.faults.kill_of_secondary(1).is_some());
    }

    #[test]
    fn deprecated_aliases_still_set_their_fields() {
        let inv = Invocation::parse(&args(&["run", "--exact", "--optimistic"])).unwrap();
        let o = inv.overlay().unwrap();
        assert_eq!(o.exec_mode, Some(ExecMode::Exact));
        assert_eq!(o.concurrency, Some(Concurrency::Optimistic(4)));
    }

    #[test]
    fn live_tuning_flags_imply_live() {
        let inv = Invocation::parse(&args(&["run", "--time-scale=5"])).unwrap();
        let o = inv.overlay().unwrap();
        assert_eq!(o.live.map(|l| l.time_scale), Some(5.0));
        let inv = Invocation::parse(&args(&["run"])).unwrap();
        assert_eq!(inv.overlay().unwrap().live, None);
    }

    #[test]
    fn usage_lists_every_flag() {
        let text = usage_text();
        for f in FLAGS {
            assert!(
                text.contains(&format!("--{}", f.name)),
                "usage is missing --{}",
                f.name
            );
        }
        assert!(text.contains("deprecated; use --exec-mode=exact"), "{text}");
        assert!(text.contains("live-diff"), "{text}");
    }

    #[test]
    fn repeated_chaos_flags_accumulate() {
        let inv = Invocation::parse(&args(&[
            "run",
            "--kill-secondary=0@1",
            "--kill-secondary=1@2",
        ]))
        .unwrap();
        let o = inv.overlay().unwrap();
        assert!(o.faults.kill_of_secondary(0).is_some());
        assert!(o.faults.kill_of_secondary(1).is_some());
    }

    #[test]
    fn bad_values_are_reported_with_their_grammar() {
        let bad = |flags: &[&str]| {
            let inv = Invocation::parse(&args(flags)).unwrap();
            inv.overlay().unwrap_err()
        };
        assert!(bad(&["run", "--queue=stack"]).contains("wheel | heap"));
        assert!(bad(&["run", "--exec-mode=fast"]).contains("profiled | exact"));
        assert!(bad(&["run", "--time-scale=-1"]).contains("time-scale"));
        assert!(bad(&["run", "--threads=0"]).contains("threads"));
    }
}
