//! Integration: the paper's headline result *shapes*, asserted.
//!
//! These tests pin the qualitative findings of §6 so that calibration
//! regressions fail loudly: who wins, what collapses, which DApps are
//! impossible where. Durations are the paper's (they run in tens of
//! milliseconds each in the simulator).

use diablo::chains::{Chain, Experiment, RunResult};
use diablo::contracts::DApp;
use diablo::net::DeploymentKind;
use diablo::workloads::traces;

fn native(chain: Chain, kind: DeploymentKind, tps: f64) -> RunResult {
    Experiment::new(chain, kind, traces::constant(tps, 120)).run()
}

// ---- Figure 3: scalability and deployment ----

#[test]
fn fig3_solana_clears_800_tps_on_every_configuration() {
    for kind in [
        DeploymentKind::Datacenter,
        DeploymentKind::Testnet,
        DeploymentKind::Devnet,
        DeploymentKind::Community,
    ] {
        let r = native(Chain::Solana, kind, 1_000.0);
        assert!(
            r.avg_throughput() > 800.0,
            "{}: {}",
            kind.name(),
            r.summary()
        );
        assert!(
            r.avg_latency_secs() < 21.0,
            "{}: {}",
            kind.name(),
            r.summary()
        );
    }
}

#[test]
fn fig3_diem_is_best_locally_and_collapses_geo() {
    let local = native(Chain::Diem, DeploymentKind::Testnet, 1_000.0);
    assert!(local.avg_throughput() > 982.0, "{}", local.summary());
    assert!(local.avg_latency_secs() <= 2.0, "{}", local.summary());
    let geo = native(Chain::Diem, DeploymentKind::Devnet, 1_000.0);
    assert!(
        geo.avg_throughput() < 820.0,
        "Diem must degrade over WAN: {}",
        geo.summary()
    );
}

#[test]
fn fig3_algorand_round_time_is_wan_insensitive() {
    // Algorand's fixed λ timeouts make its throughput nearly identical
    // on testnet and devnet (both ~885 TPS in the paper).
    let local = native(Chain::Algorand, DeploymentKind::Testnet, 1_000.0);
    let geo = native(Chain::Algorand, DeploymentKind::Devnet, 1_000.0);
    assert!(local.avg_throughput() > 820.0, "{}", local.summary());
    assert!(geo.avg_throughput() > 820.0, "{}", geo.summary());
    let ratio = local.avg_throughput() / geo.avg_throughput();
    assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
}

#[test]
fn fig3_quorum_community_sits_near_500_tps() {
    let r = native(Chain::Quorum, DeploymentKind::Community, 1_000.0);
    assert!(
        (300.0..700.0).contains(&r.avg_throughput()),
        "paper reports 499 TPS: {}",
        r.summary()
    );
}

#[test]
fn fig3_datacenter_equals_testnet() {
    // "For all blockchains there is no significant difference between
    // the datacenter and the testnet configurations."
    for chain in Chain::ALL {
        let dc = native(chain, DeploymentKind::Datacenter, 1_000.0);
        let tn = native(chain, DeploymentKind::Testnet, 1_000.0);
        let (a, b) = (dc.avg_throughput().max(1.0), tn.avg_throughput().max(1.0));
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 1.25, "{chain}: datacenter {a} vs testnet {b}");
    }
}

// ---- Figure 4: robustness ----

#[test]
fn fig4_leader_based_bft_chains_suffer_most() {
    // Diem ÷~10 in its best (local) configuration.
    let diem_low = native(Chain::Diem, DeploymentKind::Testnet, 1_000.0);
    let diem_high = native(Chain::Diem, DeploymentKind::Testnet, 10_000.0);
    let diem_ratio = diem_low.avg_throughput() / diem_high.avg_throughput().max(1.0);
    assert!(
        diem_ratio > 5.0,
        "Diem must collapse ~10x, got {diem_ratio:.2}x"
    );

    // Quorum collapses toward zero under a sustained 10,000 TPS.
    let quorum_low = native(Chain::Quorum, DeploymentKind::Testnet, 1_000.0);
    let quorum_high = native(Chain::Quorum, DeploymentKind::Testnet, 10_000.0);
    assert!(
        quorum_high.avg_throughput() < quorum_low.avg_throughput() / 3.0,
        "Quorum: {} vs {}",
        quorum_low.summary(),
        quorum_high.summary()
    );

    // The probabilistic chains degrade far more gracefully.
    let algo_low = native(Chain::Algorand, DeploymentKind::Testnet, 1_000.0);
    let algo_high = native(Chain::Algorand, DeploymentKind::Testnet, 10_000.0);
    let algo_ratio = algo_low.avg_throughput() / algo_high.avg_throughput().max(1.0);
    assert!(
        (1.2..2.0).contains(&algo_ratio),
        "Algorand ÷{algo_ratio:.2}, paper ÷1.45"
    );

    let sol_low = native(Chain::Solana, DeploymentKind::Community, 1_000.0);
    let sol_high = native(Chain::Solana, DeploymentKind::Community, 10_000.0);
    let sol_ratio = sol_low.avg_throughput() / sol_high.avg_throughput().max(1.0);
    assert!(
        (1.5..2.5).contains(&sol_ratio),
        "Solana ÷{sol_ratio:.2}, paper ÷1.94"
    );
}

#[test]
fn fig4_ethereum_commits_almost_nothing_at_10k() {
    let r = native(Chain::Ethereum, DeploymentKind::Testnet, 10_000.0);
    assert!(
        r.commit_ratio() < 0.01,
        "paper reports 0.09%: {}",
        r.summary()
    );
    assert!(r.committed() > 0, "but not literally nothing");
}

// ---- Figure 5: universality ----

#[test]
fn fig5_only_geth_chains_run_the_mobility_dapp() {
    for chain in Chain::ALL {
        let r = Experiment::new(chain, DeploymentKind::Consortium, traces::uber())
            .with_dapp(DApp::Mobility)
            .run();
        let geth = matches!(chain, Chain::Avalanche | Chain::Ethereum | Chain::Quorum);
        assert_eq!(r.able(), geth, "{chain}: {:?}", r.unable_reason);
        if !geth {
            let reason = r.unable_reason.as_deref().unwrap_or("");
            assert!(reason.contains("budget exceeded"), "{chain}: {reason}");
        }
    }
}

#[test]
fn fig5_quorum_dominates_the_geth_chains_on_uber() {
    let run = |chain| {
        Experiment::new(chain, DeploymentKind::Consortium, traces::uber())
            .with_dapp(DApp::Mobility)
            .run()
    };
    let quorum = run(Chain::Quorum);
    let avalanche = run(Chain::Avalanche);
    let ethereum = run(Chain::Ethereum);
    assert!(
        quorum.avg_throughput() > 10.0 * avalanche.avg_throughput(),
        "quorum {} vs avalanche {}",
        quorum.avg_throughput(),
        avalanche.avg_throughput()
    );
    assert!(quorum.avg_throughput() > 10.0 * ethereum.avg_throughput());
    assert!(avalanche.avg_throughput() < 169.0);
    assert!(ethereum.avg_throughput() < 169.0);
}

// ---- Figure 6: availability ----

#[test]
fn fig6_quorum_commits_every_burst() {
    for workload in [traces::google(), traces::microsoft(), traces::apple()] {
        let r = Experiment::new(Chain::Quorum, DeploymentKind::Consortium, workload)
            .with_dapp(DApp::Exchange)
            .run();
        assert!(r.commit_ratio() > 0.999, "{}", r.summary());
    }
}

#[test]
fn fig6_apple_burst_plateaus() {
    let run = |chain| {
        Experiment::new(chain, DeploymentKind::Consortium, traces::apple())
            .with_dapp(DApp::Exchange)
            .run()
    };
    // Paper: Algorand 77%, Solana 52%, Diem 75%.
    let algo = run(Chain::Algorand).commit_ratio();
    assert!((0.65..0.88).contains(&algo), "Algorand plateau {algo}");
    let sol = run(Chain::Solana).commit_ratio();
    assert!((0.40..0.62).contains(&sol), "Solana plateau {sol}");
    let diem = run(Chain::Diem).commit_ratio();
    assert!((0.63..0.88).contains(&diem), "Diem plateau {diem}");
}

#[test]
fn fig6_google_burst_is_gentle() {
    // "All the blockchains commit more than 97% of the Google workload
    // transactions."
    for chain in Chain::ALL {
        let r = Experiment::new(chain, DeploymentKind::Consortium, traces::google())
            .with_dapp(DApp::Exchange)
            .run();
        assert!(r.commit_ratio() > 0.97, "{chain}: {}", r.summary());
    }
}

// ---- Figure 2 anchors ----

#[test]
fn fig2_youtube_overwhelms_everyone() {
    for chain in Chain::ALL {
        let r = Experiment::new(chain, DeploymentKind::Consortium, traces::youtube())
            .with_dapp(DApp::VideoSharing)
            .run();
        if chain == Chain::Algorand {
            assert!(!r.able(), "YouTube is unimplementable in TEAL");
            continue;
        }
        assert!(r.commit_ratio() < 0.01, "{chain}: {}", r.summary());
    }
}

#[test]
fn fig2_dota_flattens_everything() {
    // "No blockchain maintains a throughput higher than 66 TPS" — allow
    // a small margin over the paper's figure.
    for chain in Chain::ALL {
        let r = Experiment::new(chain, DeploymentKind::Consortium, traces::dota())
            .with_dapp(DApp::Gaming)
            .run();
        assert!(r.avg_throughput() < 80.0, "{chain}: {}", r.summary());
    }
}

#[test]
fn fig2_exchange_avalanche_and_quorum_commit_most() {
    let run = |chain| {
        Experiment::new(chain, DeploymentKind::Consortium, traces::gafam())
            .with_dapp(DApp::Exchange)
            .run()
    };
    assert!(run(Chain::Avalanche).commit_ratio() > 0.86);
    assert!(run(Chain::Quorum).commit_ratio() > 0.86);
    for chain in [Chain::Ethereum, Chain::Solana] {
        let r = run(chain);
        assert!(r.commit_ratio() <= 0.50, "{chain}: {}", r.summary());
    }
}
