//! End-to-end telemetry surface: one Exchange run, validated through
//! both user-facing outputs — the `telemetry` section of the results
//! JSON and the per-phase latency breakdown of `--stat`.
//!
//! Kept to a single `#[test]`: the recorder state is process-global and
//! scoped per run, so concurrent tests in one binary would bleed into
//! each other's snapshots.

use diablo::chains::{Chain, Concurrency, ExecMode};
use diablo::core::json::{parse, Json};
use diablo::core::output::results_json_with_telemetry;
use diablo::core::{run_local, BenchmarkOptions};
use diablo::net::DeploymentKind;

const SPEC: &str = r#"
let:
  - &acc { sample: !account { number: 100 } }
  - &dapp { sample: !contract { name: "nasdaq" } }
workloads:
  - number: 2
    client:
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "buyApple"
          load:
            0: 25
            10: 0
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "buyAmazon"
          load:
            0: 25
            10: 0
"#;

#[test]
fn json_and_stat_outputs_carry_the_telemetry_pipeline() {
    let options = BenchmarkOptions {
        run: diablo::chains::RunOverlay {
            seed: Some(11),
            exec_mode: Some(ExecMode::Exact),
            concurrency: Some(Concurrency::Parallel(4)),
            ..diablo::chains::RunOverlay::none()
        },
        ..BenchmarkOptions::default()
    };
    // Clique models a distinct execution stage, so all four phases of
    // the breakdown table (mempool, consensus, execution, network) have
    // rows; chains like Algorand fold execution into the consensus λ
    // budget and legitimately skip the execution phase.
    let report = run_local(
        Chain::Ethereum,
        DeploymentKind::Testnet,
        SPEC,
        "exchange-e2e",
        &options,
    )
    .expect("run");
    assert!(report.result.committed() > 0, "{}", report.result.summary());

    let stats = report.stats_text();
    assert!(stats.contains("latency p95"), "missing tail latency: {stats}");

    if !diablo::telemetry::enabled() {
        // Compiled-out build: the JSON must simply omit the section.
        let json = results_json_with_telemetry(&report.result, &report.telemetry);
        assert!(!json.contains("\"telemetry\""));
        return;
    }

    // --stat: the per-phase table is present and ordered by phase.
    assert!(
        stats.contains("per-phase latency breakdown"),
        "missing breakdown table:\n{stats}"
    );
    for phase in ["mempool", "consensus", "execution", "network"] {
        assert!(stats.contains(phase), "phase `{phase}` missing:\n{stats}");
    }

    // JSON: a parseable document whose telemetry section has all four
    // kinds, with the keys the pipeline is expected to populate.
    let json = results_json_with_telemetry(&report.result, &report.telemetry);
    let doc = parse(&json).expect("valid json");
    let telemetry = doc.get("telemetry").expect("telemetry section");
    let counters = telemetry.get("counters").expect("counters object");
    for key in [
        "mempool.admitted",
        "consensus.blocks.committed",
        "parallel.plan.blocks",
        "vm.prepared.calls",
    ] {
        let n = counters
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("counter `{key}` missing in {json}"));
        assert!(n > 0.0, "counter `{key}` is zero");
    }
    let histograms = telemetry.get("histograms").expect("histograms object");
    for key in [
        "mempool.queue_wait_us",
        "consensus.commit_latency_us",
        "exec.block.txs",
    ] {
        let h = histograms
            .get(key)
            .unwrap_or_else(|| panic!("histogram `{key}` missing"));
        // Each histogram serializes count/sum/min/max plus quantiles.
        for field in ["count", "sum", "min", "max", "p50", "p95", "p99"] {
            assert!(
                h.get(field).and_then(Json::as_f64).is_some(),
                "histogram `{key}` lacks `{field}`"
            );
        }
    }
    assert!(telemetry.get("spans").is_some(), "spans section missing");
}
