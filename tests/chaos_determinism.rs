//! The chaos determinism contract: a pinned-seed experiment combining
//! crash-recovery, a network partition, message loss and submission
//! corruption produces byte-identical results JSON at 1, 2 and 8
//! Secondaries, and repeat runs reproduce it exactly.
//!
//! Kept to a single `#[test]`: the telemetry recorder is process-global
//! and scoped per run, so concurrent tests in one binary would bleed
//! into each other's snapshots. The workload is a transfer stream —
//! transfer plans are a pure function of the global client index, so
//! re-partitioning the clients across Secondaries reproduces the exact
//! same merged plan.

use diablo::chains::{Chain, Concurrency, ExecMode, FaultPlan, RetryPolicy};
use diablo::core::output::results_json_with_telemetry;
use diablo::core::{run_local, BenchmarkOptions};
use diablo::net::DeploymentKind;
use diablo::sim::{SimDuration, SimTime};

const SPEC: &str = r#"
let:
  - &acc { sample: !account { number: 300 } }
workloads:
  - number: 4
    client:
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !transfer
            from: *acc
          load:
            0: 60
            60: 0
"#;

/// The full chaos menu in one plan: two nodes crash at 15 s and rejoin
/// at 30 s, the network splits 3/7 between 20 s and 35 s, consensus
/// links lose 10% of their messages for the first 40 s, submissions are
/// corrupted 20% of the time between 10 s and 50 s, and clients retry
/// twice with a 400 ms backoff.
fn chaos() -> FaultPlan {
    FaultPlan::builder()
        .crash_many(2, SimTime::from_secs(15))
        .recover_many(2, SimTime::from_secs(30))
        .partition(
            &[0, 1, 2],
            &[3, 4, 5, 6, 7, 8, 9],
            SimTime::from_secs(20),
            SimTime::from_secs(35),
        )
        .loss(0.10, SimTime::from_secs(0), SimTime::from_secs(40))
        .corrupt(0.20, SimTime::from_secs(10), SimTime::from_secs(50))
        .retry(RetryPolicy {
            attempts: 3,
            backoff: SimDuration::from_millis(400),
            timeout: SimDuration::from_secs(8),
        })
        .build()
}

fn run(secondaries: usize) -> String {
    let options = BenchmarkOptions {
        run: diablo::chains::RunOverlay {
            seed: Some(11),
            exec_mode: Some(ExecMode::Exact),
            concurrency: Some(Concurrency::Serial),
            faults: chaos(),
            ..diablo::chains::RunOverlay::none()
        },
        secondaries,
    };
    let report = run_local(
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "chaos-transfer",
        &options,
    )
    .expect("run");
    assert_eq!(report.secondaries, secondaries);
    assert!(!report.faults.is_empty(), "the chaos plan reached the report");
    results_json_with_telemetry(&report.result, &report.telemetry)
}

#[test]
fn chaos_runs_are_identical_across_secondary_counts_and_reruns() {
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(one, two, "chaos JSON differs at 2 secondaries");
    assert_eq!(one, eight, "chaos JSON differs at 8 secondaries");

    let again = run(1);
    assert_eq!(one, again, "repeat chaos run diverges");

    // The faults actually bit: the run must show client-side
    // rejections (corruption exhausting the retry budget is
    // probabilistic at 20% ^ 3, so accept rejected *or* visibly
    // degraded commits) and a sub-perfect commit ratio.
    let stats = diablo::core::json::read_result_stats(&one).expect("valid JSON");
    assert!(stats.sent > 0);
    assert!(
        (stats.committed as f64) < stats.sent as f64,
        "a 35 s outage plus corruption must cost commits: {}/{} committed",
        stats.committed,
        stats.sent
    );
}
