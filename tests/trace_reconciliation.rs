//! Reconciliation between the per-transaction tracer and the aggregate
//! telemetry: the waterfall a fully-sampled trace draws must add up to
//! the same sim-time the phase histograms report, and the Chrome export
//! must be byte-identical across execution modes.
//!
//! Kept to a single `#[test]`: the recorder state is process-global and
//! scoped per run, so concurrent tests in one binary would bleed into
//! each other's snapshots.

use std::collections::BTreeMap;

use diablo::chains::{
    Chain, Concurrency, ExecMode, Experiment, PruneMode, StorageConfig, TxStatus,
};
use diablo::contracts::DApp;
use diablo::net::DeploymentKind;
use diablo::telemetry::trace::{TraceSample, TraceSet, TraceStage};
use diablo::workloads::traces;

fn traced_run(
    concurrency: Concurrency,
    sample: TraceSample,
) -> (diablo::chains::RunResult, diablo::telemetry::TelemetrySnapshot) {
    diablo::telemetry::reset();
    let result = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Testnet,
        traces::constant(50.0, 6),
    )
    .with_dapp(DApp::Exchange)
    .with_exec_mode(ExecMode::Exact)
    .with_concurrency(concurrency)
    .with_storage(StorageConfig {
        prune: PruneMode::Full,
        segment_blocks: 4,
        hot_pages: 2,
    })
    .with_grace(20)
    .with_trace(sample)
    .run();
    (result, diablo::telemetry::snapshot())
}

#[test]
fn trace_waterfalls_reconcile_with_phase_histograms() {
    let (result, telemetry) = traced_run(Concurrency::Serial, TraceSample::All);
    // Compiled-out telemetry (`--cfg diablo_telemetry_off`) records no
    // traces; there is nothing to reconcile.
    let Some(trace) = result.trace.clone() else {
        return;
    };
    assert!(result.committed() > 0, "{}", result.summary());

    // Full sampling traces every submitted transaction.
    assert_eq!(trace.txs.len(), result.records.len());

    // Per transaction, the waterfall telescopes — each stage starts
    // where the previous one ended — and for committed transactions the
    // stages span exactly `submitted → decided`, the same interval the
    // record-level latency statistics are computed from.
    let mut network_mempool_us = 0u64;
    let mut consensus_of_block: BTreeMap<u64, u64> = BTreeMap::new();
    for (i, rec) in result.records.iter().enumerate() {
        let tx = trace.tx(i as u64).expect("fully sampled");
        let stages = TraceSet::waterfall(tx);
        for pair in stages.windows(2) {
            let (_, start, dur) = pair[0];
            let (next, next_start, _) = pair[1];
            assert_eq!(start + dur, next_start, "tx {i}: gap before {next}");
        }
        for (name, _, dur) in &stages {
            if matches!(*name, "network" | "mempool") {
                network_mempool_us += dur;
            }
        }
        if let Some((_, _, dur)) = stages.iter().find(|(n, _, _)| *n == "consensus") {
            let block = tx.event(TraceStage::Ordered).expect("ordered").arg1;
            let prior = consensus_of_block.insert(block, *dur);
            assert!(
                prior.is_none() || prior == Some(*dur),
                "tx {i}: block {block} has two consensus durations"
            );
        }
        if rec.status == TxStatus::Committed {
            let total: u64 = stages.iter().map(|(_, _, d)| d).sum();
            let latency = rec.decided.expect("committed").since(rec.submitted);
            assert_eq!(total, latency.as_micros(), "tx {i}: waterfall != latency");
        }
    }

    // The tracer's network+mempool time is recorded per transaction at
    // the same instant `mempool.queue_wait_us` is: the sums must agree
    // exactly, not approximately.
    let queue_wait = telemetry
        .histogram("mempool.queue_wait_us")
        .expect("queue wait histogram");
    assert_eq!(
        network_mempool_us, queue_wait.sum,
        "traced submit→select time drifted from mempool.queue_wait_us"
    );

    // Per-block reconciliation with the commit record: the tracer sees
    // exactly the non-empty blocks (consensus rounds that committed no
    // transactions never touch a trail), each with one consensus
    // duration, and the execution stage of every tx in a block ends at
    // that block's recorded commit instant.
    let committed_at: BTreeMap<u64, u64> = result
        .blocks
        .iter()
        .map(|b| (b.height, b.committed.as_micros()))
        .collect();
    assert_eq!(
        consensus_of_block.len(),
        result.blocks.iter().filter(|b| b.txs > 0).count(),
        "traced blocks != non-empty committed blocks"
    );
    for tx in &trace.txs {
        if let Some(e) = tx.event(TraceStage::Executed) {
            let block = tx.event(TraceStage::Ordered).expect("ordered").arg1;
            assert_eq!(Some(&e.at_us), committed_at.get(&block), "tx {}", tx.id);
        }
    }

    // `consensus.commit_latency_us` — the histogram the `--stat` phase
    // table lists under `consensus` — records one entry per block,
    // empty rounds included. This is the double-labeling guard:
    // execution time lives in the execution stage only, so the
    // commit-latency total must not absorb it; the traced consensus
    // time can fall short of it only by the empty rounds' share.
    let commit_latency = telemetry
        .histogram("consensus.commit_latency_us")
        .expect("commit latency histogram");
    assert_eq!(commit_latency.count, result.blocks.len() as u64);
    assert!(
        consensus_of_block.values().sum::<u64>() <= commit_latency.sum,
        "traced consensus time exceeds consensus.commit_latency_us"
    );

    // The Chrome export carries only modeled-time facts, so its bytes
    // are identical no matter which executor committed the blocks.
    let serial_json = trace.to_chrome_json();
    for concurrency in [Concurrency::Parallel(8), Concurrency::Optimistic(8)] {
        let (other, _) = traced_run(concurrency, TraceSample::All);
        let other_json = other.trace.expect("traced").to_chrome_json();
        assert_eq!(serial_json, other_json, "{concurrency:?} export differs");
    }

    // Sampling is a deterministic membership function: a bounded run
    // traces a subset of the full run's transactions, with identical
    // trails for every member.
    let (sampled, _) = traced_run(Concurrency::Serial, TraceSample::Limit(8));
    let sampled = sampled.trace.expect("traced");
    assert_eq!(sampled.txs.len(), 8);
    for tx in &sampled.txs {
        assert_eq!(Some(tx), trace.tx(tx.id), "tx {} trail differs", tx.id);
    }
}
