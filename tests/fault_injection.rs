//! Integration: fault injection semantics across the six chains.

use diablo::chains::{Chain, Experiment, FaultPlan, RunResult};
use diablo::net::{DeploymentConfig, DeploymentKind};
use diablo::sim::SimTime;
use diablo::workloads::traces;

fn run(chain: Chain, faults: FaultPlan) -> RunResult {
    Experiment::new(chain, DeploymentKind::Devnet, traces::constant(300.0, 60))
        .with_faults(faults)
        .run()
}

fn tail_commits(r: &RunResult, from_sec: usize) -> u64 {
    let series = r.commit_series();
    (from_sec..series.seconds()).map(|s| series.get(s)).sum()
}

#[test]
fn bft_chains_tolerate_f_crashes() {
    let f = DeploymentConfig::standard(DeploymentKind::Devnet).byzantine_f();
    for chain in [Chain::Quorum, Chain::Diem, Chain::Algorand] {
        let faulted = run(chain, FaultPlan::crash_nodes(f, SimTime::from_secs(30)));
        let baseline = run(chain, FaultPlan::none());
        let (b, x) = (tail_commits(&baseline, 35), tail_commits(&faulted, 35));
        assert!(
            x as f64 > b as f64 * 0.5,
            "{chain} should survive f crashes: {b} vs {x} tail commits"
        );
    }
}

#[test]
fn quorum_dependent_chains_halt_past_f_crashes() {
    let f = DeploymentConfig::standard(DeploymentKind::Devnet).byzantine_f();
    for chain in [Chain::Quorum, Chain::Diem, Chain::Algorand] {
        let r = run(chain, FaultPlan::crash_nodes(f + 1, SimTime::from_secs(30)));
        // Submissions after the fault can never commit.
        let late = r
            .records
            .iter()
            .filter(|rec| rec.submitted >= SimTime::from_secs(32))
            .filter(|rec| rec.latency_secs().is_some())
            .count();
        assert_eq!(late, 0, "{chain} must halt once the quorum is lost");
    }
}

#[test]
fn eventual_chains_keep_committing_past_f_crashes() {
    let f = DeploymentConfig::standard(DeploymentKind::Devnet).byzantine_f();
    for chain in [Chain::Solana, Chain::Avalanche] {
        let r = run(chain, FaultPlan::crash_nodes(f + 1, SimTime::from_secs(30)));
        assert!(
            tail_commits(&r, 35) > 0,
            "{chain} (eventual consistency) should keep making progress"
        );
    }
}

#[test]
fn network_slowdown_raises_latency() {
    let slow = run(
        Chain::Diem,
        FaultPlan::slow_network(SimTime::from_secs(0), 6.0),
    );
    let fast = run(Chain::Diem, FaultPlan::none());
    assert!(
        slow.avg_latency_secs() > fast.avg_latency_secs(),
        "6x slower network must not be faster: {} vs {}",
        slow.avg_latency_secs(),
        fast.avg_latency_secs()
    );
}

#[test]
fn faultless_plan_changes_nothing() {
    let a = run(Chain::Quorum, FaultPlan::none());
    let b = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Devnet,
        traces::constant(300.0, 60),
    )
    .run();
    assert_eq!(a.committed(), b.committed());
    assert_eq!(a.avg_latency_secs(), b.avg_latency_secs());
}
