//! Integration: fault injection semantics across the six chains.

use diablo::chains::{Chain, Experiment, FaultPlan, RunResult};
use diablo::net::{DeploymentConfig, DeploymentKind};
use diablo::sim::SimTime;
use diablo::workloads::traces;

fn run(chain: Chain, faults: FaultPlan) -> RunResult {
    Experiment::new(chain, DeploymentKind::Devnet, traces::constant(300.0, 60))
        .with_faults(faults)
        .run()
}

fn tail_commits(r: &RunResult, from_sec: usize) -> u64 {
    let series = r.commit_series();
    (from_sec..series.seconds()).map(|s| series.get(s)).sum()
}

#[test]
fn bft_chains_tolerate_f_crashes() {
    let f = DeploymentConfig::standard(DeploymentKind::Devnet).byzantine_f();
    for chain in [Chain::Quorum, Chain::Diem, Chain::Algorand] {
        let faulted = run(
            chain,
            FaultPlan::builder()
                .crash_many(f, SimTime::from_secs(30))
                .build(),
        );
        let baseline = run(chain, FaultPlan::none());
        let (b, x) = (tail_commits(&baseline, 35), tail_commits(&faulted, 35));
        assert!(
            x as f64 > b as f64 * 0.5,
            "{chain} should survive f crashes: {b} vs {x} tail commits"
        );
    }
}

#[test]
fn quorum_dependent_chains_halt_past_f_crashes() {
    let f = DeploymentConfig::standard(DeploymentKind::Devnet).byzantine_f();
    for chain in [Chain::Quorum, Chain::Diem, Chain::Algorand] {
        let r = run(
            chain,
            FaultPlan::builder()
                .crash_many(f + 1, SimTime::from_secs(30))
                .build(),
        );
        // Submissions after the fault can never commit.
        let late = r
            .records
            .iter()
            .filter(|rec| rec.submitted >= SimTime::from_secs(32))
            .filter(|rec| rec.latency_secs().is_some())
            .count();
        assert_eq!(late, 0, "{chain} must halt once the quorum is lost");
    }
}

#[test]
fn eventual_chains_keep_committing_past_f_crashes() {
    let f = DeploymentConfig::standard(DeploymentKind::Devnet).byzantine_f();
    for chain in [Chain::Solana, Chain::Avalanche] {
        let r = run(
            chain,
            FaultPlan::builder()
                .crash_many(f + 1, SimTime::from_secs(30))
                .build(),
        );
        assert!(
            tail_commits(&r, 35) > 0,
            "{chain} (eventual consistency) should keep making progress"
        );
    }
}

#[test]
fn network_slowdown_raises_latency() {
    let slow = run(
        Chain::Diem,
        FaultPlan::builder()
            .slowdown(SimTime::from_secs(0), 6.0)
            .build(),
    );
    let fast = run(Chain::Diem, FaultPlan::none());
    assert!(
        slow.avg_latency_secs() > fast.avg_latency_secs(),
        "6x slower network must not be faster: {} vs {}",
        slow.avg_latency_secs(),
        fast.avg_latency_secs()
    );
}

#[test]
fn bft_chains_stall_then_resume_after_recovery() {
    // Crash f + 1 of the quorum at t = 20 s and bring them back at
    // t = 35 s: a BFT chain must commit nothing while the quorum is
    // lost, then resume once the recovered nodes caught up.
    let f = DeploymentConfig::standard(DeploymentKind::Devnet).byzantine_f();
    for chain in [Chain::Quorum, Chain::Diem] {
        let r = run(
            chain,
            FaultPlan::builder()
                .crash_many(f + 1, SimTime::from_secs(20))
                .recover_many(f + 1, SimTime::from_secs(35))
                .build(),
        );
        // Nothing decided inside the outage (submissions from the
        // window only commit after recovery, if at all).
        let decided_in_outage = r
            .records
            .iter()
            .filter_map(|rec| rec.decided)
            .filter(|d| *d >= SimTime::from_secs(22) && *d < SimTime::from_secs(35))
            .count();
        assert_eq!(
            decided_in_outage, 0,
            "{chain} must commit nothing while > f nodes are down"
        );
        // The tail (well past recovery + catch-up) commits again.
        assert!(
            tail_commits(&r, 45) > 0,
            "{chain} must resume committing after the crashed nodes rejoin"
        );
    }
}

#[test]
fn partitions_stall_bft_quorums_for_their_duration() {
    let cfg = DeploymentConfig::standard(DeploymentKind::Devnet);
    let n = cfg.node_count();
    let f = cfg.byzantine_f();
    // Split off f + 1 nodes: neither side keeps a 2f + 1 quorum ⇒ the
    // committing (majority) component still has at most n - (f + 1)
    // nodes, which for n = 3f + 1 is exactly 2f — below quorum.
    let minority: Vec<usize> = (0..f + 1).collect();
    let majority: Vec<usize> = (f + 1..n).collect();
    for chain in [Chain::Quorum, Chain::Diem] {
        let r = run(
            chain,
            FaultPlan::builder()
                .partition(
                    &minority,
                    &majority,
                    SimTime::from_secs(20),
                    SimTime::from_secs(40),
                )
                .build(),
        );
        let decided_inside = r
            .records
            .iter()
            .filter_map(|rec| rec.decided)
            .filter(|d| *d >= SimTime::from_secs(22) && *d < SimTime::from_secs(40))
            .count();
        assert_eq!(
            decided_inside, 0,
            "{chain} has no quorum on either side of the partition"
        );
        assert!(
            tail_commits(&r, 45) > 0,
            "{chain} must resume once the partition heals"
        );
    }
}

#[test]
fn message_loss_degrades_but_does_not_halt() {
    let lossy = run(
        Chain::Quorum,
        FaultPlan::builder()
            .loss(0.3, SimTime::from_secs(0), SimTime::from_secs(60))
            .build(),
    );
    let clean = run(Chain::Quorum, FaultPlan::none());
    assert!(
        lossy.committed() > 0,
        "30% loss forces retransmissions, not a halt"
    );
    assert!(
        lossy.avg_latency_secs() > clean.avg_latency_secs(),
        "lost consensus messages must cost latency: {} vs {}",
        lossy.avg_latency_secs(),
        clean.avg_latency_secs()
    );
}

#[test]
fn corruption_rejects_submissions_at_the_client() {
    let r = run(
        Chain::Quorum,
        FaultPlan::builder()
            .corrupt(0.9, SimTime::from_secs(10), SimTime::from_secs(50))
            // One attempt: a corrupted submission fails immediately.
            .retry(diablo::chains::RetryPolicy {
                attempts: 1,
                ..Default::default()
            })
            .build(),
    );
    let rejected = r
        .records
        .iter()
        .filter(|rec| rec.status == diablo::chains::TxStatus::Rejected)
        .count();
    assert!(
        rejected > 0,
        "corrupted submissions must surface as client-side rejections"
    );
    // Rejections only happen inside the corruption window.
    assert!(r
        .records
        .iter()
        .filter(|rec| rec.status == diablo::chains::TxStatus::Rejected)
        .all(|rec| rec.submitted >= SimTime::from_secs(10)
            && rec.submitted < SimTime::from_secs(50)));
}

#[test]
fn retries_ride_out_a_short_corruption_burst() {
    // With retries enabled, a corrupted submission is retried past the
    // default policy's backoff; with a single attempt it is lost.
    let one_shot = run(
        Chain::Quorum,
        FaultPlan::builder()
            .corrupt(0.5, SimTime::from_secs(10), SimTime::from_secs(50))
            .retry(diablo::chains::RetryPolicy {
                attempts: 1,
                ..Default::default()
            })
            .build(),
    );
    let retried = run(
        Chain::Quorum,
        FaultPlan::builder()
            .corrupt(0.5, SimTime::from_secs(10), SimTime::from_secs(50))
            .retry(diablo::chains::RetryPolicy::default())
            .build(),
    );
    assert!(
        retried.committed() > one_shot.committed(),
        "retries must recover corrupted submissions: {} vs {}",
        retried.committed(),
        one_shot.committed()
    );
}

#[test]
fn faultless_plan_changes_nothing() {
    let a = run(Chain::Quorum, FaultPlan::none());
    let b = Experiment::new(
        Chain::Quorum,
        DeploymentKind::Devnet,
        traces::constant(300.0, 60),
    )
    .run();
    assert_eq!(a.committed(), b.committed());
    assert_eq!(a.avg_latency_secs(), b.avg_latency_secs());
}
