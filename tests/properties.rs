//! Cross-crate property tests.

use diablo::chains::{Chain, Experiment};
use diablo::core::yaml;
use diablo::net::DeploymentKind;
use diablo::workloads::Workload;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The YAML-subset parser never panics on arbitrary input.
    #[test]
    fn yaml_parser_is_total(input in "\\PC{0,200}") {
        let _ = yaml::parse(&input);
    }

    /// Tick expansion conserves the workload total at every tick size.
    #[test]
    fn workload_ticks_conserve_totals(
        rates in proptest::collection::vec(0.0f64..2_000.0, 1..60),
        tick in prop_oneof![Just(100u64), Just(200u64), Just(500u64), Just(1000u64)],
    ) {
        let w = Workload::from_rates("prop", rates);
        let sum: u64 = w.ticks(tick).iter().sum();
        prop_assert_eq!(sum, w.total_txs());
    }

    /// Splitting a workload across secondaries conserves per-second load.
    #[test]
    fn workload_split_conserves_rates(
        rates in proptest::collection::vec(0.0f64..5_000.0, 1..30),
        parts in 1usize..8,
    ) {
        let w = Workload::from_rates("prop", rates);
        let split = w.split(parts);
        for sec in 0..w.duration_secs() {
            let sum: f64 = split.iter().map(|p| p.rate_at(sec)).sum();
            prop_assert!((sum - w.rate_at(sec)).abs() < 1e-6);
        }
    }
}

proptest! {
    // Chain runs are comparatively expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the load and seed, a chain run conserves transactions:
    /// every submitted transaction ends in exactly one terminal state
    /// and committed ≤ submitted.
    #[test]
    fn chain_runs_conserve_transactions(
        tps in 10.0f64..2_000.0,
        seed in 0u64..1_000,
        chain_idx in 0usize..6,
    ) {
        let chain = Chain::ALL[chain_idx];
        let workload = diablo::workloads::traces::constant(tps, 10);
        let expected = workload.total_txs();
        let r = Experiment::new(chain, DeploymentKind::Testnet, workload)
            .with_seed(seed)
            .run();
        prop_assert_eq!(r.submitted(), expected);
        prop_assert!(r.committed() <= r.submitted());
        // Latencies are non-negative and only committed txs have them.
        let lat_count = r.records.iter().filter(|rec| rec.latency_secs().is_some()).count();
        prop_assert_eq!(lat_count as u64, r.committed());
        for rec in &r.records {
            if let Some(l) = rec.latency_secs() {
                prop_assert!(l >= 0.0);
            }
        }
    }

    /// Offered load monotonicity: submitting more never commits fewer
    /// transactions per second than a trivially small load... inverted
    /// chains (collapse) break rate monotonicity, but the commit COUNT
    /// within a fixed window never exceeds the submitted count and the
    /// simulator never commits a transaction before it was submitted.
    #[test]
    fn commits_never_precede_submission(
        tps in 100.0f64..5_000.0,
        chain_idx in 0usize..6,
    ) {
        let chain = Chain::ALL[chain_idx];
        let r = Experiment::new(
            chain,
            DeploymentKind::Testnet,
            diablo::workloads::traces::constant(tps, 8),
        )
        .run();
        for rec in &r.records {
            if let Some(d) = rec.decided {
                prop_assert!(d >= rec.submitted);
            }
        }
    }
}
