//! Cross-crate property tests, on the in-tree `diablo-testkit` harness.

use diablo::chains::{Chain, Experiment, FaultPlan, RetryPolicy};
use diablo::core::yaml;
use diablo::net::DeploymentKind;
use diablo::workloads::Workload;
use diablo_testkit::gen::{ascii_strings, f64s, from_slice, u64s, usizes, vecs};
use diablo_testkit::{prop_assert, prop_assert_eq, Property};

/// The YAML-subset parser never panics on arbitrary input.
#[test]
fn yaml_parser_is_total() {
    Property::new("yaml_parser_is_total")
        .cases(64)
        .check(&ascii_strings(0..=200), |input| {
            let _ = yaml::parse(input);
            Ok(())
        });
}

/// Tick expansion conserves the workload total at every tick size.
#[test]
fn workload_ticks_conserve_totals() {
    Property::new("workload_ticks_conserve_totals").cases(64).check(
        &(
            vecs(f64s(0.0..2_000.0), 1..=59),
            from_slice(&[100u64, 200, 500, 1000]),
        ),
        |(rates, tick)| {
            let w = Workload::from_rates("prop", rates.clone());
            let sum: u64 = w.ticks(*tick).iter().sum();
            prop_assert_eq!(sum, w.total_txs());
            Ok(())
        },
    );
}

/// Splitting a workload across secondaries conserves per-second load.
#[test]
fn workload_split_conserves_rates() {
    Property::new("workload_split_conserves_rates").cases(64).check(
        &(vecs(f64s(0.0..5_000.0), 1..=29), usizes(1..=7)),
        |(rates, parts)| {
            let w = Workload::from_rates("prop", rates.clone());
            let split = w.split(*parts);
            for sec in 0..w.duration_secs() {
                let sum: f64 = split.iter().map(|p| p.rate_at(sec)).sum();
                prop_assert!(
                    (sum - w.rate_at(sec)).abs() < 1e-6,
                    "rates diverge at second {sec}: split {sum}, whole {}",
                    w.rate_at(sec)
                );
            }
            Ok(())
        },
    );
}

/// Whatever the load and seed, a chain run conserves transactions:
/// every submitted transaction ends in exactly one terminal state and
/// committed ≤ submitted. (Chain runs are comparatively expensive;
/// keep the case count low.)
#[test]
fn chain_runs_conserve_transactions() {
    Property::new("chain_runs_conserve_transactions").cases(8).check(
        &(f64s(10.0..2_000.0), u64s(0..=999), usizes(0..=5)),
        |(tps, seed, chain_idx)| {
            let chain = Chain::ALL[*chain_idx];
            let workload = diablo::workloads::traces::constant(*tps, 10);
            let expected = workload.total_txs();
            let r = Experiment::new(chain, DeploymentKind::Testnet, workload)
                .with_seed(*seed)
                .run();
            prop_assert_eq!(r.submitted(), expected);
            prop_assert!(r.committed() <= r.submitted());
            // Latencies are non-negative and only committed txs have them.
            let lat_count = r
                .records
                .iter()
                .filter(|rec| rec.latency_secs().is_some())
                .count();
            prop_assert_eq!(lat_count as u64, r.committed());
            for rec in &r.records {
                if let Some(l) = rec.latency_secs() {
                    prop_assert!(l >= 0.0);
                }
            }
            Ok(())
        },
    );
}

/// A fault plan that declares no faults — even one built through the
/// fluent builder and carrying a retry policy — leaves a pinned-seed
/// run byte-identical to a run with no plan at all: the fault path must
/// draw no randomness while idle, whatever the chain, load or seed.
#[test]
fn empty_fault_plans_change_nothing() {
    Property::new("empty_fault_plans_change_nothing").cases(8).check(
        &(
            f64s(50.0..1_000.0),
            u64s(0..=999),
            usizes(0..=5),
            u64s(1..=5),
        ),
        |(tps, seed, chain_idx, attempts)| {
            let chain = Chain::ALL[*chain_idx];
            let workload = diablo::workloads::traces::constant(*tps, 8);
            let baseline = Experiment::new(chain, DeploymentKind::Testnet, workload.clone())
                .with_seed(*seed)
                .run();
            let plan = FaultPlan::builder()
                .retry(RetryPolicy {
                    attempts: *attempts as u32,
                    ..Default::default()
                })
                .build();
            prop_assert!(plan.is_empty(), "a retry policy alone is not a fault");
            let faulted = Experiment::new(chain, DeploymentKind::Testnet, workload)
                .with_seed(*seed)
                .with_faults(plan)
                .run();
            prop_assert_eq!(
                diablo::core::output::results_json(&baseline),
                diablo::core::output::results_json(&faulted),
                "an empty fault plan perturbed the run"
            );
            Ok(())
        },
    );
}

/// The simulator never commits a transaction before it was submitted,
/// whatever the offered load or chain (inverted chains break rate
/// monotonicity under collapse, but causality always holds).
#[test]
fn commits_never_precede_submission() {
    Property::new("commits_never_precede_submission").cases(8).check(
        &(f64s(100.0..5_000.0), usizes(0..=5)),
        |(tps, chain_idx)| {
            let chain = Chain::ALL[*chain_idx];
            let r = Experiment::new(
                chain,
                DeploymentKind::Testnet,
                diablo::workloads::traces::constant(*tps, 8),
            )
            .run();
            for rec in &r.records {
                if let Some(d) = rec.decided {
                    prop_assert!(d >= rec.submitted);
                }
            }
            Ok(())
        },
    );
}
