//! The telemetry determinism contract: a pinned-seed run produces the
//! same merged snapshot — and byte-identical JSON — no matter how many
//! execution workers the engine uses, and repeat runs reproduce it
//! exactly.
//!
//! Kept to a single `#[test]`: the recorder state is process-global and
//! scoped per run, so concurrent tests in one binary would bleed into
//! each other's snapshots.

use diablo::chains::{Chain, Concurrency, ExecMode};
use diablo::core::output::results_json_with_telemetry;
use diablo::core::{run_local, BenchmarkOptions};
use diablo::net::DeploymentKind;

/// An Exchange workload spread over several stocks so committed blocks
/// decompose into multiple conflict components (buys of different
/// stocks touch disjoint supplies) — the case where a parallel schedule
/// actually differs from the serial one.
const SPEC: &str = r#"
let:
  - &acc { sample: !account { number: 120 } }
  - &dapp { sample: !contract { name: "nasdaq" } }
workloads:
  - number: 2
    client:
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "buyApple"
          load:
            0: 30
            10: 0
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "buyGoogle"
          load:
            0: 20
            10: 0
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "buyMicrosoft"
          load:
            0: 10
            10: 0
"#;

fn run(concurrency: Concurrency) -> (String, diablo::telemetry::TelemetrySnapshot) {
    let options = BenchmarkOptions {
        run: diablo::chains::RunOverlay {
            seed: Some(7),
            exec_mode: Some(ExecMode::Exact),
            concurrency: Some(concurrency),
            ..diablo::chains::RunOverlay::none()
        },
        ..BenchmarkOptions::default()
    };
    let report = run_local(
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "exchange-telemetry",
        &options,
    )
    .expect("run");
    let json = results_json_with_telemetry(&report.result, &report.telemetry);
    (json, report.telemetry)
}

#[test]
fn snapshots_are_identical_across_worker_counts_and_reruns() {
    let (serial_json, serial) = run(Concurrency::Serial);
    let (par2_json, par2) = run(Concurrency::Parallel(2));
    let (par8_json, par8) = run(Concurrency::Parallel(8));

    // The snapshot is a pure function of (spec, seed, chain): conflict
    // plans, gas, per-phase timings all come from sim-time, never from
    // the worker schedule.
    assert_eq!(serial, par2, "Serial vs Parallel(2) snapshots diverge");
    assert_eq!(serial, par8, "Serial vs Parallel(8) snapshots diverge");
    assert_eq!(serial_json, par2_json, "JSON differs at 2 workers");
    assert_eq!(serial_json, par8_json, "JSON differs at 8 workers");

    // Repeat runs with the pinned seed are byte-identical.
    let (again_json, again) = run(Concurrency::Serial);
    assert_eq!(serial, again, "repeat run snapshot diverges");
    assert_eq!(serial_json, again_json, "repeat run JSON diverges");

    // With telemetry compiled in, the run must actually have recorded
    // the pipeline: committed blocks, planned conflict components and
    // VM executions. (Under --cfg diablo_telemetry_off the snapshot is
    // empty and only the equalities above are meaningful.)
    if diablo::telemetry::enabled() {
        assert!(!serial.is_empty(), "enabled build produced no telemetry");
        assert!(
            serial.counter("consensus.blocks.committed").unwrap_or(0) > 0,
            "no committed blocks recorded"
        );
        assert!(
            serial.counter("parallel.plan.blocks").unwrap_or(0) > 0,
            "no conflict plans recorded — plannable blocks never analysed"
        );
        assert!(
            serial.counter("parallel.plan.components").unwrap_or(0) > 0,
            "multi-stock blocks should decompose into components"
        );
        assert!(
            serial.histogram("mempool.queue_wait_us").is_some(),
            "mempool queue-wait histogram missing"
        );
        assert!(
            serial_json.contains("\"telemetry\":{"),
            "JSON lacks the telemetry section"
        );
    }
}
