//! The `RunConfig` precedence contract, swept over every field.
//!
//! Three layers of coverage:
//!
//! 1. An in-memory sweep where the spec layer and the CLI layer disagree
//!    in *every* `RunOverlay` field. The resolved configuration is taken
//!    apart with an exhaustive destructure, so adding a field to
//!    `RunConfig` without deciding its precedence here is a compile
//!    error, not a silently untested knob.
//! 2. The same contract through the real surfaces: a parsed YAML spec
//!    (its `execution:`/`sigverify:`/`storage:` sections) against a
//!    parsed CLI invocation.
//! 3. Byte-identity of pinned-seed reports: the same resolved
//!    configuration produces the same results JSON whether the settings
//!    arrived via the spec or via CLI flags, and repeat runs reproduce
//!    it exactly.

use diablo::chains::{
    Chain, ChainParams, Concurrency, ExecMode, FaultPlan, LiveConfig, PruneMode, QueueBackend,
    RunConfig, RunOverlay, SigVerify, StorageConfig,
};
use diablo::cli::Invocation;
use diablo::net::{DeploymentConfig, DeploymentKind};
use diablo::sim::SimTime;
use diablo::telemetry::trace::TraceSample;

fn params(gas: u64) -> ChainParams {
    let mut p = ChainParams::standard(
        Chain::Quorum,
        &DeploymentConfig::standard(DeploymentKind::Testnet),
    );
    p.block_gas_limit = gas;
    p
}

fn sig(per_tx_us: f64) -> SigVerify {
    SigVerify {
        per_tx_us,
        batch_fixed_us: 0.0,
        batch_knee: 1.0,
        max_speedup: 1.0,
    }
}

/// A spec layer that sets every field away from its default.
fn spec_layer() -> RunOverlay {
    RunOverlay {
        seed: Some(1001),
        exec_mode: Some(ExecMode::Exact),
        concurrency: Some(Concurrency::Parallel(2)),
        grace_secs: Some(11),
        params: Some(params(1_000_000)),
        faults: FaultPlan::builder()
            .kill_secondary(0, SimTime::from_secs(1))
            .build(),
        sig_verify: Some(sig(3.0)),
        queue: Some(QueueBackend::Heap),
        storage: Some(StorageConfig {
            prune: PruneMode::Distance(16),
            segment_blocks: 8,
            hot_pages: 8,
        }),
        trace: Some(TraceSample::Limit(100)),
        live: Some(LiveConfig {
            time_scale: 5.0,
            workers: 2,
        }),
    }
}

/// A CLI layer that disagrees with the spec layer in every field.
fn cli_layer() -> RunOverlay {
    RunOverlay {
        seed: Some(2002),
        exec_mode: Some(ExecMode::Profiled),
        concurrency: Some(Concurrency::Parallel(8)),
        grace_secs: Some(22),
        params: Some(params(2_000_000)),
        faults: FaultPlan::builder()
            .kill_secondary(1, SimTime::from_secs(2))
            .build(),
        sig_verify: Some(sig(7.0)),
        queue: Some(QueueBackend::Wheel),
        storage: Some(StorageConfig {
            prune: PruneMode::Before(4),
            segment_blocks: 32,
            hot_pages: 128,
        }),
        trace: Some(TraceSample::All),
        live: Some(LiveConfig {
            time_scale: 9.0,
            workers: 6,
        }),
    }
}

#[test]
fn every_field_resolves_cli_over_spec_over_default() {
    let spec = spec_layer();
    let cli = cli_layer();

    // No layers → defaults, for every field.
    assert_eq!(RunConfig::layered(&[]), RunConfig::default());

    // Spec alone wins over the defaults, for every field.
    let mid = RunConfig::layered(&[&spec]);
    assert_eq!(mid.seed, 1001);
    assert_eq!(mid.exec_mode, ExecMode::Exact);
    assert_eq!(mid.concurrency, Concurrency::Parallel(2));
    assert_eq!(mid.grace_secs, 11);
    assert_eq!(mid.params, Some(params(1_000_000)));
    assert_eq!(mid.sig_verify, Some(sig(3.0)));
    assert_eq!(mid.queue, QueueBackend::Heap);
    assert_eq!(
        mid.storage,
        Some(StorageConfig {
            prune: PruneMode::Distance(16),
            segment_blocks: 8,
            hot_pages: 8,
        })
    );
    assert_eq!(mid.trace, Some(TraceSample::Limit(100)));
    assert_eq!(
        mid.live,
        Some(LiveConfig {
            time_scale: 5.0,
            workers: 2,
        })
    );
    assert!(mid.faults.kill_of_secondary(0).is_some());
    assert!(mid.faults.kill_of_secondary(1).is_none());

    // CLI on top of spec wins, field by field. The exhaustive
    // destructure is the point: a new `RunConfig` field fails to
    // compile until its precedence is asserted here.
    let RunConfig {
        seed,
        exec_mode,
        concurrency,
        grace_secs,
        params: resolved_params,
        faults,
        sig_verify,
        queue,
        storage,
        trace,
        live,
    } = RunConfig::layered(&[&spec, &cli]);
    assert_eq!(seed, 2002);
    assert_eq!(exec_mode, ExecMode::Profiled);
    assert_eq!(concurrency, Concurrency::Parallel(8));
    assert_eq!(grace_secs, 22);
    assert_eq!(resolved_params, Some(params(2_000_000)));
    assert_eq!(sig_verify, Some(sig(7.0)));
    assert_eq!(queue, QueueBackend::Wheel);
    assert_eq!(
        storage,
        Some(StorageConfig {
            prune: PruneMode::Before(4),
            segment_blocks: 32,
            hot_pages: 128,
        })
    );
    assert_eq!(trace, Some(TraceSample::All));
    assert_eq!(
        live,
        Some(LiveConfig {
            time_scale: 9.0,
            workers: 6,
        })
    );
    // Faults are the one additive field: both layers' schedules apply.
    assert!(faults.kill_of_secondary(0).is_some());
    assert!(faults.kill_of_secondary(1).is_some());
}

#[test]
fn unset_cli_fields_defer_to_the_spec_layer() {
    let spec = spec_layer();
    let cfg = RunConfig::layered(&[&spec, &RunOverlay::none()]);
    assert_eq!(cfg, RunConfig::layered(&[&spec]), "an empty CLI layer changes nothing");
}

const SPEC_WITH_SECTIONS: &str = r#"
workloads:
  - number: 1
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load:
            0: 5
            2: 0
execution:
  mode: parallel
  threads: 2
sigverify:
  per_tx_us: 3.5
storage:
  prune: "distance=16"
  segment_blocks: 8
"#;

fn cli(args: &[&str]) -> RunOverlay {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    Invocation::parse(&argv)
        .expect("flags parse")
        .overlay()
        .expect("overlay builds")
}

#[test]
fn parsed_spec_and_parsed_flags_obey_the_same_order() {
    let spec = diablo::core::spec::BenchmarkSpec::parse(SPEC_WITH_SECTIONS)
        .expect("spec parses")
        .overlay();

    // CLI silent → the spec's sections decide.
    let cfg = RunConfig::layered(&[&spec, &cli(&[])]);
    assert_eq!(cfg.concurrency, Concurrency::Parallel(2));
    assert_eq!(cfg.sig_verify.map(|s| s.per_tx_us), Some(3.5));
    assert_eq!(cfg.storage.map(|s| s.segment_blocks), Some(8));

    // CLI speaks → it beats the spec, but only in the fields it sets.
    let cfg = RunConfig::layered(&[&spec, &cli(&["--threads=8", "--prune=before=4"])]);
    assert_eq!(cfg.concurrency, Concurrency::Parallel(8), "CLI threads win");
    assert_eq!(
        cfg.storage.map(|s| s.prune),
        Some(PruneMode::Before(4)),
        "CLI prune wins"
    );
    assert_eq!(
        cfg.sig_verify.map(|s| s.per_tx_us),
        Some(3.5),
        "untouched sigverify stays with the spec"
    );

    // Neither speaks → the defaults hold.
    assert_eq!(cfg.seed, RunConfig::default().seed);
    assert_eq!(cfg.grace_secs, RunConfig::default().grace_secs);
}

const TRANSFER_WORKLOAD: &str = r#"
workloads:
  - number: 2
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 50 } }
          load:
            0: 20
            5: 0
"#;

#[test]
fn pinned_seed_reports_are_byte_identical_across_layer_routes() {
    use diablo::core::output::results_json_report;
    use diablo::core::{run_local, BenchmarkOptions};

    // Route A: the execution settings travel in the spec.
    let spec_route = format!("{TRANSFER_WORKLOAD}execution:\n  mode: serial\n");
    let run = |spec: &str, flags: &[&str]| -> String {
        let options = BenchmarkOptions {
            run: cli(flags),
            ..BenchmarkOptions::default()
        };
        let report = run_local(
            Chain::Quorum,
            DeploymentKind::Testnet,
            spec,
            "precedence-transfer",
            &options,
        )
        .expect("run");
        results_json_report(&report)
    };

    let via_spec = run(&spec_route, &["--seed=11", "--exec-mode=exact"]);
    // Route B: the same settings travel as CLI flags over a bare spec.
    let via_cli = run(
        TRANSFER_WORKLOAD,
        &["--seed=11", "--exec-mode=exact", "--execution=serial"],
    );
    assert_eq!(
        via_spec, via_cli,
        "one resolved RunConfig must mean one report, whichever layer carried it"
    );

    // Pinned seed, repeat run: byte-identical.
    let again = run(&spec_route, &["--seed=11", "--exec-mode=exact"]);
    assert_eq!(via_spec, again, "repeat pinned-seed run diverges");

    // A different seed genuinely changes the report (the identity
    // assertions above are not vacuous).
    let other = run(&spec_route, &["--seed=12", "--exec-mode=exact"]);
    assert_ne!(via_spec, other, "seed must reach the run");
}
