//! Integration: the distributed Primary/Secondary mode over localhost
//! TCP, exercising the wire protocol end to end.

use std::net::{TcpListener, TcpStream};
use std::thread;

use diablo::chains::Chain;
use diablo::core::primary::BenchmarkOptions;
use diablo::core::wire::{read_message, run_secondary, serve_primary, write_message, Message};
use diablo::net::DeploymentKind;

const SPEC: &str = r#"
workloads:
  - number: 4
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 100 } }
          load:
            0: 50
            10: 0
"#;

fn run_distributed(n_secondaries: usize) -> (diablo::core::Report, Vec<String>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handles: Vec<_> = (0..n_secondaries)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || run_secondary(&addr, &format!("zone-{i}")))
        })
        .collect();
    let report = serve_primary(
        &listener,
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "tcp-test",
        &BenchmarkOptions::default(),
        n_secondaries,
    )
    .expect("primary");
    let stats = handles
        .into_iter()
        .map(|h| h.join().expect("join").expect("secondary"))
        .collect();
    (report, stats)
}

#[test]
fn two_secondaries_full_run() {
    let (report, stats) = run_distributed(2);
    assert_eq!(report.secondaries, 2);
    assert_eq!(report.clients, 4);
    // 4 clients × 50 TPS × 10 s.
    assert_eq!(report.result.submitted(), 2_000);
    assert!(
        report.result.commit_ratio() > 0.9,
        "{}",
        report.result.summary()
    );
    assert_eq!(stats.len(), 2);
    for s in &stats {
        assert!(
            s.contains("1000 sent"),
            "each secondary plans half the clients: {s}"
        );
    }
}

#[test]
fn four_secondaries_same_totals_as_one() {
    let (one, _) = run_distributed(1);
    let (four, _) = run_distributed(4);
    assert_eq!(one.result.submitted(), four.result.submitted());
    assert_eq!(one.result.committed(), four.result.committed());
}

#[test]
fn dead_secondary_yields_a_partial_aggregation() {
    // One live Secondary and one that dies right after its assignment
    // (Hello → Assign → dropped connection). The Primary must detect
    // the death, discard the dead worker's share and aggregate the
    // live worker's results instead of hanging.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();

    let live = {
        let addr = addr.clone();
        thread::spawn(move || run_secondary(&addr, "survivor"))
    };
    let dying = thread::spawn(move || {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        write_message(
            &mut stream,
            &Message::Hello {
                tag: "doomed".to_string(),
            },
        )
        .expect("hello");
        match read_message(&mut stream).expect("assign") {
            Message::Assign { .. } => {} // crash before planning anything
            other => panic!("expected Assign, got {other:?}"),
        }
    });

    let report = serve_primary(
        &listener,
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "tcp-partial",
        &BenchmarkOptions::default(),
        2,
    )
    .expect("primary must not hang on a dead secondary");
    dying.join().expect("dying thread");
    let live_stats = live.join().expect("join").expect("survivor");

    assert_eq!(report.secondaries, 2);
    assert_eq!(
        report.lost_secondaries.len(),
        1,
        "exactly one worker died: {:?}",
        report.lost_secondaries
    );
    // Only the live worker's 2 clients submitted: 2 × 50 TPS × 10 s.
    assert_eq!(report.result.submitted(), 1_000);
    assert!(
        report.result.commit_ratio() > 0.9,
        "{}",
        report.result.summary()
    );
    assert!(live_stats.contains("1000 sent"), "{live_stats}");
    // The partial aggregation is called out in the stats text.
    assert!(
        report.stats_text().contains("died mid-benchmark"),
        "{}",
        report.stats_text()
    );
}

#[test]
fn killed_secondary_truncates_its_share() {
    // A declared `kill-secondary` fault: worker 1 dies (in simulation)
    // at t = 5 s of a 10 s workload. Its transactions from 5 s on leave
    // the plan, while the worker itself — alive on the wire — still
    // gets one outcome per planned transaction.
    use diablo::sim::SimTime;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handles: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || run_secondary(&addr, &format!("zone-{i}")))
        })
        .collect();
    let options = BenchmarkOptions {
        run: diablo::chains::RunOverlay {
            faults: diablo::chains::FaultPlan::builder()
                .kill_secondary(1, SimTime::from_secs(5))
                .build(),
            ..diablo::chains::RunOverlay::none()
        },
        ..BenchmarkOptions::default()
    };
    let report = serve_primary(
        &listener,
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "tcp-killed",
        &options,
        2,
    )
    .expect("primary");
    for h in handles {
        h.join().expect("join").expect("secondary");
    }
    assert_eq!(report.lost_secondaries, vec![1]);
    // Worker 0 submits its full 1000; worker 1 only the first half.
    assert_eq!(report.result.submitted(), 1_500);
}

#[test]
fn distributed_matches_local_mode() {
    let (tcp, _) = run_distributed(2);
    let local = diablo::core::run_local(
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "tcp-test",
        &BenchmarkOptions::default(),
    )
    .expect("local");
    assert_eq!(tcp.result.submitted(), local.result.submitted());
    assert_eq!(tcp.result.committed(), local.result.committed());
    let diff = (tcp.result.avg_latency_secs() - local.result.avg_latency_secs()).abs();
    assert!(
        diff < 1e-9,
        "identical plans must produce identical latencies"
    );
}
