//! Integration: the distributed Primary/Secondary mode over localhost
//! TCP, exercising the wire protocol end to end.

use std::net::TcpListener;
use std::thread;

use diablo::chains::Chain;
use diablo::core::primary::BenchmarkOptions;
use diablo::core::wire::{run_secondary, serve_primary};
use diablo::net::DeploymentKind;

const SPEC: &str = r#"
workloads:
  - number: 4
    client:
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 100 } }
          load:
            0: 50
            10: 0
"#;

fn run_distributed(n_secondaries: usize) -> (diablo::core::Report, Vec<String>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handles: Vec<_> = (0..n_secondaries)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || run_secondary(&addr, &format!("zone-{i}")))
        })
        .collect();
    let report = serve_primary(
        &listener,
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "tcp-test",
        &BenchmarkOptions::default(),
        n_secondaries,
    )
    .expect("primary");
    let stats = handles
        .into_iter()
        .map(|h| h.join().expect("join").expect("secondary"))
        .collect();
    (report, stats)
}

#[test]
fn two_secondaries_full_run() {
    let (report, stats) = run_distributed(2);
    assert_eq!(report.secondaries, 2);
    assert_eq!(report.clients, 4);
    // 4 clients × 50 TPS × 10 s.
    assert_eq!(report.result.submitted(), 2_000);
    assert!(
        report.result.commit_ratio() > 0.9,
        "{}",
        report.result.summary()
    );
    assert_eq!(stats.len(), 2);
    for s in &stats {
        assert!(
            s.contains("1000 sent"),
            "each secondary plans half the clients: {s}"
        );
    }
}

#[test]
fn four_secondaries_same_totals_as_one() {
    let (one, _) = run_distributed(1);
    let (four, _) = run_distributed(4);
    assert_eq!(one.result.submitted(), four.result.submitted());
    assert_eq!(one.result.committed(), four.result.committed());
}

#[test]
fn distributed_matches_local_mode() {
    let (tcp, _) = run_distributed(2);
    let local = diablo::core::run_local(
        Chain::Quorum,
        DeploymentKind::Testnet,
        SPEC,
        "tcp-test",
        &BenchmarkOptions::default(),
    )
    .expect("local");
    assert_eq!(tcp.result.submitted(), local.result.submitted());
    assert_eq!(tcp.result.committed(), local.result.committed());
    let diff = (tcp.result.avg_latency_secs() - local.result.avg_latency_secs()).abs();
    assert!(
        diff < 1e-9,
        "identical plans must produce identical latencies"
    );
}
