//! Integration: spec → plan → chain → records → reports, across crates.

use diablo::chains::{Chain, ExecMode, Experiment, TxStatus};
use diablo::contracts::DApp;
use diablo::core::output::{results_csv, results_json};
use diablo::core::{run_local, BenchmarkOptions};
use diablo::net::DeploymentKind;
use diablo::workloads::traces;

const SPEC: &str = r#"
let:
  - &acc { sample: !account { number: 300 } }
  - &dapp { sample: !contract { name: "fifa" } }
workloads:
  - number: 2
    client:
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "add()"
          load:
            0: 40
            15: 0
"#;

#[test]
fn spec_to_report_round_trip() {
    let report = run_local(
        Chain::Diem,
        DeploymentKind::Testnet,
        SPEC,
        "fifa-smoke",
        &BenchmarkOptions::default(),
    )
    .expect("run");
    assert_eq!(report.result.submitted(), 2 * 40 * 15);
    assert!(
        report.result.commit_ratio() > 0.9,
        "{}",
        report.result.summary()
    );

    // Output formats carry every record.
    let json = results_json(&report.result);
    assert!(json.contains("\"chain\":\"Diem\""));
    assert_eq!(
        json.matches("committed").count() as u64,
        report.result.committed() + 1
    );
    let csv = results_csv(&report.result);
    assert_eq!(csv.lines().count() as u64, report.result.submitted() + 1);
}

#[test]
fn exact_execution_preserves_contract_invariants() {
    // In Exact mode every committed `add` really increments the FIFA
    // counter, so committed == counter. We verify through the engine by
    // running a small workload twice and comparing record counts.
    let run = |seed| {
        Experiment::new(
            Chain::Quorum,
            DeploymentKind::Testnet,
            traces::constant(30.0, 10),
        )
        .with_dapp(DApp::WebService)
        .with_exec_mode(ExecMode::Exact)
        .with_seed(seed)
        .run()
    };
    let r = run(7);
    assert_eq!(r.submitted(), 300);
    assert!(r.committed() > 250, "{}", r.summary());
    assert_eq!(r.count_status(TxStatus::Failed), 0, "adds never fail");
}

#[test]
fn profiled_and_exact_modes_agree_on_counts() {
    let run = |mode| {
        Experiment::new(
            Chain::Diem,
            DeploymentKind::Testnet,
            traces::constant(50.0, 10),
        )
        .with_dapp(DApp::Gaming)
        .with_exec_mode(mode)
        .run()
    };
    let exact = run(ExecMode::Exact);
    let profiled = run(ExecMode::Profiled);
    assert_eq!(exact.submitted(), profiled.submitted());
    // Commit counts may differ by at most a block's worth due to gas
    // drift between modes.
    let diff = exact.committed().abs_diff(profiled.committed());
    assert!(
        diff < 300,
        "exact {} vs profiled {}",
        exact.committed(),
        profiled.committed()
    );
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let run = || {
        Experiment::new(
            Chain::Solana,
            DeploymentKind::Devnet,
            traces::constant(200.0, 15),
        )
        .with_dapp(DApp::Exchange)
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed(), b.committed());
    assert_eq!(a.avg_latency_secs(), b.avg_latency_secs());
    assert_eq!(results_json(&a), results_json(&b));
}

#[test]
fn all_chain_dapp_pairs_respect_the_support_matrix() {
    for chain in Chain::ALL {
        for dapp in DApp::ALL {
            let r = Experiment::new(chain, DeploymentKind::Testnet, traces::constant(5.0, 5))
                .with_dapp(dapp)
                .run();
            let expect_able = match (chain, dapp) {
                (Chain::Algorand, DApp::VideoSharing) => false, // TEAL state limits
                (Chain::Algorand | Chain::Diem | Chain::Solana, DApp::Mobility) => false,
                _ => true,
            };
            assert_eq!(
                r.able(),
                expect_able,
                "{chain}/{dapp}: {:?}",
                r.unable_reason
            );
        }
    }
}
