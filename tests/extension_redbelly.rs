//! Integration: the leaderless-DBFT extension reproduces the paper's
//! contrast claims about Smart Red Belly Blockchain ([40] in §6.1/§6.3).

use diablo::chains::{Chain, Experiment};
use diablo::contracts::DApp;
use diablo::net::DeploymentKind;
use diablo::workloads::traces;

#[test]
fn redbelly_commits_the_whole_nasdaq_workload_on_consortium() {
    // §6.1: "recent experiments already demonstrated that some
    // blockchain could commit all of them in the same setting [40]".
    let r = Experiment::new(Chain::RedBelly, DeploymentKind::Consortium, traces::gafam())
        .with_dapp(DApp::Exchange)
        .run();
    assert!(r.commit_ratio() > 0.999, "{}", r.summary());
}

#[test]
fn redbelly_is_immune_to_sustained_overload() {
    // §6.3: "Smart Red Belly Blockchain, which relies on a leaderless
    // Byzantine fault tolerant consensus protocol, is immune to this
    // problem."
    let low = Experiment::new(
        Chain::RedBelly,
        DeploymentKind::Testnet,
        traces::constant(1_000.0, 120),
    )
    .run();
    let high = Experiment::new(
        Chain::RedBelly,
        DeploymentKind::Testnet,
        traces::constant(10_000.0, 120),
    )
    .run();
    assert!(low.commit_ratio() > 0.99, "{}", low.summary());
    assert!(
        high.avg_throughput() >= low.avg_throughput(),
        "leaderless DBFT must not collapse: {} vs {}",
        low.summary(),
        high.summary()
    );
}

#[test]
fn redbelly_scales_with_node_count() {
    // Superblocks are unions of per-node proposals: more nodes, more
    // capacity — the opposite of the leader-based chains.
    let small = Experiment::new(
        Chain::RedBelly,
        DeploymentKind::Devnet,
        traces::constant(8_000.0, 60),
    )
    .run();
    let large = Experiment::new(
        Chain::RedBelly,
        DeploymentKind::Community,
        traces::constant(8_000.0, 60),
    )
    .run();
    assert!(
        large.avg_throughput() > small.avg_throughput() * 1.5,
        "200 proposers must beat 10: {} vs {}",
        small.summary(),
        large.summary()
    );
}

#[test]
fn redbelly_runs_the_mobility_dapp() {
    // geth-based, so no hard per-transaction budget.
    let r = Experiment::new(Chain::RedBelly, DeploymentKind::Consortium, traces::uber())
        .with_dapp(DApp::Mobility)
        .run();
    assert!(r.able());
    assert!(r.committed() > 0, "{}", r.summary());
}
