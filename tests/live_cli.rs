//! The `diablo` binary driven as a real process: live mode over actual
//! sockets, and the Secondary's connect-failure contract — transient
//! refusals are retried per `--retry` and exit with the generic failure
//! code, while a non-transient bad address fails fast with its own
//! documented exit code.

use std::net::TcpListener;
use std::process::Command;
use std::time::Instant;

const EXIT_FAILURE: i32 = 1;
const EXIT_NON_TRANSIENT: i32 = 2;

fn diablo(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_diablo"))
        .args(args)
        .output()
        .expect("spawn diablo")
}

#[test]
fn bad_address_fails_fast_with_the_non_transient_exit_code() {
    let start = Instant::now();
    let out = diablo(&[
        "secondary",
        "--primary=999.999.0.1:70000",
        // A generous retry budget that must NOT be spent: bad addresses
        // are permanent and skip the retry loop entirely.
        "--retry=10x500/10000",
    ]);
    assert_eq!(out.status.code(), Some(EXIT_NON_TRANSIENT));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad address"), "stderr: {stderr}");
    assert!(
        start.elapsed().as_millis() < 2_000,
        "a non-transient error must not sit out the retry backoff"
    );
}

#[test]
fn refused_connection_is_retried_then_fails_generically() {
    // Bind a port, then free it: nothing listens there, so every
    // connect attempt is refused — the canonical transient error.
    let port = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").port()
    };
    let start = Instant::now();
    let out = diablo(&[
        "secondary",
        &format!("--primary=127.0.0.1:{port}"),
        "--retry=3x200/5000",
    ]);
    assert_eq!(out.status.code(), Some(EXIT_FAILURE));
    // Three attempts with a 200 ms backoff between them: the process
    // must have actually waited out at least the two gaps.
    assert!(
        start.elapsed().as_millis() >= 400,
        "exited after {:?} — the retry backoff was skipped",
        start.elapsed()
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("attempts") || stderr.contains("refused") || stderr.contains("connect"),
        "stderr should describe the exhausted retries: {stderr}"
    );
}

#[test]
fn unknown_flags_are_a_usage_error() {
    let out = diablo(&["run", "--no-such-flag", "workloads/exchange.yaml"]);
    assert_eq!(out.status.code(), Some(EXIT_FAILURE));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--no-such-flag"), "stderr: {stderr}");
}

#[test]
fn live_run_over_real_secondaries_reports_a_fidelity_score() {
    let out_path = std::env::temp_dir().join(format!("diablo-live-cli-{}.json", std::process::id()));
    let out = diablo(&[
        "run",
        "--live",
        "--chain=quorum",
        "--seed=11",
        "--secondaries=2",
        "--grace=1",
        "--time-scale=50",
        &format!("--output={}", out_path.display()),
        "workloads/exchange.yaml",
    ]);
    assert!(
        out.status.success(),
        "live run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&out_path).expect("results written");
    let _ = std::fs::remove_file(&out_path);

    // The live report carries the live-diff section with a finite
    // fidelity and no lost Secondaries.
    assert!(json.contains("\"liveDiff\":{"), "no liveDiff section: {json}");
    assert!(json.contains("\"lostSecondaries\":0"), "workers died: {json}");
    let fidelity: f64 = json
        .split("\"fidelity\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("fidelity field parses");
    assert!(
        fidelity.is_finite() && fidelity > 0.0 && fidelity <= 1.0,
        "fidelity out of range: {fidelity}"
    );
}
